"""Topology abstraction for the detailed network models.

A topology is a directed multigraph of router/endpoint vertices.  Endpoint
vertices are the processing nodes (integers); router vertices are
topology-specific hashables.  Routing algorithms query ``next_hops`` to
enumerate the legal forwarding choices at each vertex — one choice means
deterministic routing, several mean multipath adaptivity (the mechanism
behind "arbitrary delivery order", Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

Vertex = Hashable


@dataclass(frozen=True)
class Link:
    """A directed link with a fixed traversal latency."""

    src: Vertex
    dst: Vertex
    latency: float = 1.0


class Topology:
    """Base class; concrete topologies implement the three queries below."""

    @property
    def endpoints(self) -> Sequence[int]:
        """The processing-node vertices (integer ids)."""
        raise NotImplementedError

    def vertices(self) -> Iterable[Vertex]:
        """All vertices (endpoints + routers)."""
        raise NotImplementedError

    def next_hops(self, at: Vertex, dst: int) -> List[Vertex]:
        """Legal forwarding choices at ``at`` toward endpoint ``dst``.

        Must be non-empty for every reachable destination, and every choice
        must make progress (no cycles for any selection sequence).
        """
        raise NotImplementedError

    # -- helpers shared by concrete topologies --------------------------------

    def path(self, src: int, dst: int, chooser=None) -> List[Vertex]:
        """Walk from ``src`` to ``dst`` selecting hops with ``chooser``
        (a callable taking the choice list; defaults to first-choice,
        i.e. deterministic routing)."""
        if chooser is None:
            chooser = lambda choices: choices[0]
        at: Vertex = src
        walk: List[Vertex] = [at]
        guard = 0
        while at != dst:
            choices = self.next_hops(at, dst)
            if not choices:
                raise ValueError(f"no route from {at} toward {dst}")
            at = chooser(choices)
            walk.append(at)
            guard += 1
            if guard > 10_000:
                raise RuntimeError("routing walk did not converge (cycle?)")
        return walk

    def path_diversity(self, src: int, dst: int) -> int:
        """Number of distinct minimal paths (product of choice counts along
        a first-choice walk; exact for the tree/mesh topologies here)."""
        if src == dst:
            return 1
        count = 1
        at: Vertex = src
        while at != dst:
            choices = self.next_hops(at, dst)
            count *= len(choices)
            at = choices[0]
        return count


class StarTopology(Topology):
    """Degenerate single-switch topology — useful in unit tests."""

    def __init__(self, n_endpoints: int) -> None:
        if n_endpoints < 2:
            raise ValueError("need at least two endpoints")
        self.n = n_endpoints
        self._hub = ("hub",)

    @property
    def endpoints(self) -> Sequence[int]:
        return range(self.n)

    def vertices(self) -> Iterable[Vertex]:
        yield from range(self.n)
        yield self._hub

    def next_hops(self, at: Vertex, dst: int) -> List[Vertex]:
        if at == dst:
            return []
        if at == self._hub:
            return [dst]
        return [self._hub]
