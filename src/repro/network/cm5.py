"""Service-level model of the CM-5 data network.

Exposes precisely the three feature gaps the paper attributes software
overhead to (Section 2.2):

* **Arbitrary delivery order** — each (src, dst) channel runs a
  :class:`~repro.network.delivery.DeliveryModel`; the paper's measurement
  configuration is ``PairSwapReorder`` ("half the packets arrive out of
  order").
* **Finite buffering** — the network offers no acceptance guarantee; it is
  the messaging layer's job (buffer preallocation, credits) to ensure
  destinations can absorb what arrives.  The model delivers whatever shows
  up; nodes with bounded receive space overflow, observably.
* **Fault detection without correction** — a
  :class:`~repro.network.faults.FaultInjector` corrupts or drops packets;
  corrupt packets are delivered and fail their checksum at the NI.

Packets are limited to the configured hardware packet size (four payload
words on the CM-5, Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.network.delivery import DeliveryModel, InOrderDelivery, PairSwapReorder
from repro.network.faults import FaultInjector
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Simulator
from repro.sim.stats import Counter
from repro.sim.trace import NULL_TRACER, Tracer

#: Packet types subject to the channel's reordering model.  Control packets
#: (requests, replies, acks, plain active messages) are solitary packets —
#: there is no stream of them to reorder — so they ride an in-order channel.
DATA_PACKET_TYPES = frozenset({PacketType.XFER_DATA, PacketType.STREAM_DATA})


@dataclass
class CM5NetworkConfig:
    """Tunables for the service-level CM-5 model."""

    #: Hardware packet payload limit in words (CM-5: 4 data words).
    packet_size: int = 4
    #: One-way network latency for a packet (arbitrary virtual time units).
    latency: float = 10.0
    #: How long the network may hold a packet for reordering before it must
    #: emerge (bounds the delivery model's holding stage).
    hold_timeout: float = 1000.0

    def __post_init__(self) -> None:
        if self.packet_size < 1:
            raise ValueError("packet_size must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")


class _Channel:
    """Per-(src, dst) in-flight state."""

    def __init__(self, model: DeliveryModel) -> None:
        self.model = model
        self.next_index = 0
        self.flush_scheduled = False


class CM5Network:
    """The paper's Section 3 network substrate.

    ``delivery_factory`` builds a fresh :class:`DeliveryModel` per channel;
    it defaults to the paper's half-out-of-order assumption.  Use
    ``InOrderDelivery`` to model the favourable (no reordering) case used
    for the finite-sequence measurements.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[CM5NetworkConfig] = None,
        delivery_factory: Optional[Callable[[], DeliveryModel]] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config or CM5NetworkConfig()
        self._delivery_factory = delivery_factory or PairSwapReorder
        self.injector = injector or FaultInjector()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.counters = Counter()
        self._channels: Dict[Tuple[int, int, str], _Channel] = {}
        self._callbacks: Dict[int, Callable[[Packet], None]] = {}

    # -- hardware service description (queried by messaging layers) -----------

    #: The CM-5 network does not preserve transmission order.
    provides_in_order = False
    #: No acceptance guarantee / end-to-end flow control in hardware.
    provides_flow_control = False
    #: Errors are detected (checksum) but not corrected.
    provides_reliability = False

    # -- binding -----------------------------------------------------------------

    def attach(self, node_id: int, deliver: Callable[[Packet], None]) -> None:
        self._callbacks[node_id] = deliver

    # -- injection ----------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Inject one hardware packet; delivery is scheduled on the sim."""
        if packet.data_words > self.config.packet_size:
            raise ValueError(
                f"packet carries {packet.data_words} words; hardware limit is "
                f"{self.config.packet_size}"
            )
        kind = "data" if packet.ptype in DATA_PACKET_TYPES else "ctrl"
        channel = self._channel(packet.src, packet.dst, kind)
        index = channel.next_index
        channel.next_index += 1
        self.counters.incr("injected")
        self.counters.incr("injected_words", packet.data_words)
        self.tracer.emit(self.sim.now, "cm5.inject", str(packet), index=index)
        survivor = self.injector.apply(packet, index if kind == "data" else -1 - index)
        if survivor is None:
            self.counters.incr("dropped_in_flight")
            return
        self.sim.schedule(
            self.config.latency,
            lambda: self._raw_arrival(channel, index, survivor),
            label="cm5.arrival",
        )

    # -- delivery ------------------------------------------------------------------

    def _raw_arrival(self, channel: _Channel, index: int, packet: Packet) -> None:
        releases = channel.model.on_arrival(index, packet)
        for rel_index, rel_packet in releases:
            self._deliver(rel_index, rel_packet)
        if channel.model.pending() and not channel.flush_scheduled:
            channel.flush_scheduled = True
            self.sim.schedule(
                self.config.hold_timeout,
                lambda: self._flush(channel),
                label="cm5.flush",
            )

    def _flush(self, channel: _Channel) -> None:
        channel.flush_scheduled = False
        for rel_index, rel_packet in channel.model.flush():
            self.counters.incr("flushed")
            self._deliver(rel_index, rel_packet)

    def _deliver(self, index: int, packet: Packet) -> None:
        self.counters.incr("delivered")
        self.tracer.emit(self.sim.now, "cm5.deliver", str(packet), index=index)
        callback = self._callbacks.get(packet.dst)
        if callback is None:
            self.counters.incr("undeliverable")
            return
        callback(packet)

    # -- state ----------------------------------------------------------------------

    def _channel(self, src: int, dst: int, kind: str = "data") -> _Channel:
        key = (src, dst, kind)
        channel = self._channels.get(key)
        if channel is None:
            model = self._delivery_factory() if kind == "data" else InOrderDelivery()
            channel = _Channel(model)
            self._channels[key] = channel
        return channel

    def channel_model(self, src: int, dst: int) -> DeliveryModel:
        """The reordering model governing the data channel src -> dst."""
        return self._channel(src, dst, "data").model

    def expected_ooo(self, src: int, dst: int, p: int) -> int:
        """Closed-form out-of-order count the data channel will produce."""
        return self.channel_model(src, dst).expected_ooo(p)
