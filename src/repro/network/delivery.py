"""Delivery-order models.

The paper's central network feature is *arbitrary delivery order*: the CM-5
(with adaptive multipath routing and network timesharing) does not preserve
transmission order between a source/destination pair.  For the indefinite-
sequence measurements the paper "assume[s] that half the packets arrive out
of order" (Section 3.2).

A :class:`DeliveryModel` is a holding stage on a single (src, dst) channel,
sitting conceptually inside the network just before the destination NI: raw
arrivals enter in transmission order and the model decides the release
order, holding packets to realize overtaking.  The stage is *causal* (a
packet is never released before it arrived) and deterministic models expose
``expected_ooo(p)`` — how many of ``p`` packets a reorder-buffering receiver
will classify as out of order — so closed-form cost formulas can be checked
against simulation exactly.

A packet counts as out of order when it cannot be consumed immediately,
i.e. some packet with a smaller channel index arrives after it.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Tuple


class DeliveryModel:
    """Base class.  Subclasses override :meth:`on_arrival` and optionally
    :meth:`flush`, and must implement :meth:`expected_ooo` if deterministic.

    ``on_arrival`` receives the packet's channel index (0-based transmission
    order) and an opaque packet object, and returns the list of (index,
    packet) pairs to release *now*, in release order.
    """

    #: Whether expected_ooo() is meaningful.
    deterministic = True

    def on_arrival(self, index: int, packet) -> List[Tuple[int, object]]:
        raise NotImplementedError

    def flush(self) -> List[Tuple[int, object]]:
        """Release anything still held (end of stream / hold timeout)."""
        return []

    def pending(self) -> int:
        """Number of packets currently held inside the network stage."""
        return 0

    def expected_ooo(self, p: int) -> int:
        """Number of the first ``p`` packets that arrive out of order."""
        raise NotImplementedError

    def clone(self) -> "DeliveryModel":
        """Fresh instance with identical configuration (one per channel)."""
        raise NotImplementedError


class InOrderDelivery(DeliveryModel):
    """Transmission order preserved (deterministic routing, or CR)."""

    def on_arrival(self, index: int, packet) -> List[Tuple[int, object]]:
        return [(index, packet)]

    def expected_ooo(self, p: int) -> int:
        return 0

    def clone(self) -> "InOrderDelivery":
        return InOrderDelivery()


class PairSwapReorder(DeliveryModel):
    """Adjacent pairs swap: arrival order 1,0,3,2,...

    Exactly ``floor(p/2)`` packets are out of order — the paper's "half the
    packets arrive out of order" assumption.
    """

    def __init__(self) -> None:
        self._held: Optional[Tuple[int, object]] = None

    def on_arrival(self, index: int, packet) -> List[Tuple[int, object]]:
        if index % 2 == 0:
            self._held = (index, packet)
            return []
        held, self._held = self._held, None
        releases = [(index, packet)]
        if held is not None:
            releases.append(held)
        return releases

    def flush(self) -> List[Tuple[int, object]]:
        held, self._held = self._held, None
        return [held] if held is not None else []

    def pending(self) -> int:
        return 1 if self._held is not None else 0

    def expected_ooo(self, p: int) -> int:
        return p // 2

    def clone(self) -> "PairSwapReorder":
        return PairSwapReorder()


class HeadDelayReorder(DeliveryModel):
    """The first packet of the stream is overtaken by the next ``k``.

    Arrival order: 1, 2, ..., k, 0, k+1, ... — the receiver buffers packets
    1..k (k out-of-order packets), then drains them all when packet 0 lands.
    Stresses reorder-buffer depth (window must be >= k).
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        self._held: Optional[Tuple[int, object]] = None

    def on_arrival(self, index: int, packet) -> List[Tuple[int, object]]:
        if self.k == 0:
            return [(index, packet)]
        if index == 0:
            self._held = (index, packet)
            return []
        if index == self.k and self._held is not None:
            held, self._held = self._held, None
            return [(index, packet), held]
        return [(index, packet)]

    def flush(self) -> List[Tuple[int, object]]:
        held, self._held = self._held, None
        return [held] if held is not None else []

    def pending(self) -> int:
        return 1 if self._held is not None else 0

    def expected_ooo(self, p: int) -> int:
        if p <= 1 or self.k == 0:
            return 0
        # Packets 1..min(k, p-1) arrive before packet 0 and get buffered.
        return min(self.k, p - 1)

    def clone(self) -> "HeadDelayReorder":
        return HeadDelayReorder(self.k)


class FractionReorder(DeliveryModel):
    """Reorder a target *fraction* of packets, blockwise.

    The fraction is approximated as m/B (limited-denominator rational);
    within each block of B consecutive packets the first packet is held and
    released after the following m, making exactly m of each complete block
    out of order.  ``FractionReorder(0.5)`` degenerates to pair swapping.
    """

    def __init__(self, fraction: float, max_denominator: int = 16) -> None:
        if not 0.0 <= fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        ratio = Fraction(fraction).limit_denominator(max_denominator)
        self.fraction = fraction
        self.ooo_per_block = ratio.numerator
        # Block must contain the held packet plus the m overtakers.
        self.block = max(ratio.denominator, self.ooo_per_block + 1)
        self._held: Optional[Tuple[int, object]] = None

    def on_arrival(self, index: int, packet) -> List[Tuple[int, object]]:
        if self.ooo_per_block == 0:
            return [(index, packet)]
        pos = index % self.block
        if pos == 0:
            self._held = (index, packet)
            return []
        releases = [(index, packet)]
        if pos == self.ooo_per_block and self._held is not None:
            held, self._held = self._held, None
            releases.append(held)
        return releases

    def flush(self) -> List[Tuple[int, object]]:
        held, self._held = self._held, None
        return [held] if held is not None else []

    def pending(self) -> int:
        return 1 if self._held is not None else 0

    def expected_ooo(self, p: int) -> int:
        if self.ooo_per_block == 0:
            return 0
        full_blocks, tail = divmod(p, self.block)
        count = full_blocks * self.ooo_per_block
        if tail:
            # In a partial block the held head is overtaken by min(tail-1, m)
            # packets before the flush releases it.
            count += min(tail - 1, self.ooo_per_block)
        return count

    def clone(self) -> "FractionReorder":
        clone = FractionReorder.__new__(FractionReorder)
        clone.fraction = self.fraction
        clone.ooo_per_block = self.ooo_per_block
        clone.block = self.block
        clone._held = None
        return clone


class TimesharingReorder(DeliveryModel):
    """Network-state swap reordering (Section 2.2's second mechanism).

    "...when the network state is swapped and resumed in a way that does
    not preserve delivery order (as with timesharing and process
    migration)."  Every ``epoch`` arrivals, the in-flight residue (here:
    the last packet of the epoch) is swapped out and re-injected *after*
    the next epoch's first packets — packets from consecutive scheduling
    quanta interleave.
    """

    def __init__(self, epoch: int = 8) -> None:
        if epoch < 2:
            raise ValueError("epoch must be at least 2")
        self.epoch = epoch
        self._held: Optional[Tuple[int, object]] = None

    def on_arrival(self, index: int, packet) -> List[Tuple[int, object]]:
        pos = index % self.epoch
        if pos == self.epoch - 1:
            # Last packet of the quantum: swapped out with the network state.
            self._held = (index, packet)
            return []
        releases = [(index, packet)]
        if pos == 0 and self._held is not None:
            # Resumed after the next quantum began: the residue re-emerges
            # behind the new quantum's first packet.
            held, self._held = self._held, None
            releases.append(held)
        return releases

    def flush(self) -> List[Tuple[int, object]]:
        held, self._held = self._held, None
        return [held] if held is not None else []

    def pending(self) -> int:
        return 1 if self._held is not None else 0

    def expected_ooo(self, p: int) -> int:
        if p == 0:
            return 0
        # Each complete epoch's last packet is overtaken by the next
        # epoch's first packet, iff a next epoch starts.
        return (p - 1) // self.epoch

    def clone(self) -> "TimesharingReorder":
        return TimesharingReorder(self.epoch)


class RandomReorder(DeliveryModel):
    """Stochastic overtaking: each packet is held with probability
    ``hold_prob`` and released after the next arrival.

    Models irregular adaptive-routing variance; the achieved out-of-order
    fraction is measured rather than prescribed.
    """

    deterministic = False

    def __init__(self, rng: random.Random, hold_prob: float = 0.5) -> None:
        if not 0.0 <= hold_prob <= 1.0:
            raise ValueError("hold_prob must be in [0, 1]")
        self.rng = rng
        self.hold_prob = hold_prob
        self._held: List[Tuple[int, object]] = []

    def on_arrival(self, index: int, packet) -> List[Tuple[int, object]]:
        releases: List[Tuple[int, object]] = []
        if self._held and self.rng.random() < 0.5:
            releases.extend(self._held)
            self._held = []
        if self.rng.random() < self.hold_prob:
            self._held.append((index, packet))
        else:
            releases.append((index, packet))
        return releases

    def flush(self) -> List[Tuple[int, object]]:
        held, self._held = self._held, []
        return held

    def pending(self) -> int:
        return len(self._held)

    def expected_ooo(self, p: int) -> int:
        raise NotImplementedError("RandomReorder has no closed-form ooo count")

    def clone(self) -> "RandomReorder":
        return RandomReorder(self.rng, self.hold_prob)
