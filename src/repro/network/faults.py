"""Fault injection and detection.

The CM-5 network *detects* packet errors but cannot correct them
(Section 2.2); reliable delivery therefore falls to software (source
buffering + acknowledgements + retransmission).  The injector corrupts or
drops packets in flight according to a :class:`FaultPlan`; detection happens
where the paper says it does — at packet extraction, via the checksum.

On the real CM-5 a detected error aborts the computation.  We instead model
detect-and-drop so that the *software fault-tolerance machinery whose cost
the paper measures* (source buffers, acks, retransmission) can actually be
exercised end to end; the cost accounting of the fault-free fast path is
unaffected by this choice.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.network.packet import Packet


class FaultKind(enum.Enum):
    """What happens to a faulted packet."""

    CORRUPT = "corrupt"  # delivered, fails checksum at the NI
    DROP = "drop"        # vanishes in the network

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class FaultPlan:
    """Deterministic and/or stochastic fault selection.

    ``targeted`` maps (src, dst, channel_index) to a :class:`FaultKind` —
    used by tests that need a specific packet to fail exactly once.
    ``corrupt_prob``/``drop_prob`` apply independently to every packet.

    Channel-index convention on the service-level CM-5 network: data
    packets (xfer/stream data) count 0, 1, 2, ... per (src, dst) data
    channel; control packets (requests, replies, acks, plain active
    messages) are keyed with negative indices -1, -2, ... in their own
    per-(src, dst) control channel, so a targeted plan can hit either kind
    unambiguously.

    ``once`` makes each targeted fault fire only on the first transmission
    of that channel index, so a retransmission succeeds.
    """

    targeted: Dict[Tuple[int, int, int], FaultKind] = field(default_factory=dict)
    corrupt_prob: float = 0.0
    drop_prob: float = 0.0
    once: bool = True

    def __post_init__(self) -> None:
        for name, p in (("corrupt_prob", self.corrupt_prob), ("drop_prob", self.drop_prob)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    @classmethod
    def corrupt_indices(cls, src: int, dst: int, indices, once: bool = True) -> "FaultPlan":
        """Corrupt specific channel indices on one channel."""
        return cls(
            targeted={(src, dst, i): FaultKind.CORRUPT for i in indices},
            once=once,
        )

    @classmethod
    def drop_indices(cls, src: int, dst: int, indices, once: bool = True) -> "FaultPlan":
        """Drop specific channel indices on one channel."""
        return cls(
            targeted={(src, dst, i): FaultKind.DROP for i in indices},
            once=once,
        )

    @property
    def is_empty(self) -> bool:
        return not self.targeted and self.corrupt_prob == 0.0 and self.drop_prob == 0.0


class FaultInjector:
    """Applies a :class:`FaultPlan` to packets in flight."""

    def __init__(self, plan: Optional[FaultPlan] = None, rng: Optional[random.Random] = None) -> None:
        self.plan = plan or FaultPlan.none()
        self.rng = rng or random.Random(0)
        self.corrupted_count = 0
        self.dropped_count = 0
        self._fired: Set[Tuple[int, int, int]] = set()

    def apply(self, packet: Packet, channel_index: int) -> Optional[Packet]:
        """Return the (possibly corrupted) packet, or ``None`` if dropped."""
        kind = self._decide(packet, channel_index)
        if kind is FaultKind.DROP:
            self.dropped_count += 1
            return None
        if kind is FaultKind.CORRUPT:
            self.corrupted_count += 1
            return packet.corrupt()
        return packet

    def _decide(self, packet: Packet, channel_index: int) -> Optional[FaultKind]:
        key = (packet.src, packet.dst, channel_index)
        targeted = self.plan.targeted.get(key)
        if targeted is not None:
            if self.plan.once and key in self._fired:
                targeted = None
            else:
                self._fired.add(key)
                return targeted
        if self.plan.drop_prob and self.rng.random() < self.plan.drop_prob:
            return FaultKind.DROP
        if self.plan.corrupt_prob and self.rng.random() < self.plan.corrupt_prob:
            return FaultKind.CORRUPT
        return None

    @property
    def total_faults(self) -> int:
        return self.corrupted_count + self.dropped_count
