"""Finite buffering and flow-control primitives.

"Finite buffering in machines means that flow control is generally
necessary for correct execution" (Section 2.2).  These primitives give the
detailed network models real, bounded buffers whose occupancy invariants
the test suite checks, and give the node models a way to demonstrate what
goes wrong *without* end-to-end flow control (buffer overflow).
"""

from __future__ import annotations

from typing import Deque, Generic, Optional, TypeVar
from collections import deque

T = TypeVar("T")


class BufferOverflowError(RuntimeError):
    """Raised when an unguarded push exceeds capacity."""


class FiniteBuffer(Generic[T]):
    """A bounded FIFO with occupancy accounting.

    ``offer`` is the polite interface (returns False when full, for
    backpressure); ``push`` is the impolite one (raises on overflow, for
    demonstrating the failure mode the paper's buffer management exists to
    prevent).
    """

    def __init__(self, capacity: int, name: str = "buffer") -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.peak_occupancy = 0
        self.total_accepted = 0
        self.total_rejected = 0

    # -- insertion -----------------------------------------------------------

    def offer(self, item: T) -> bool:
        """Try to enqueue; return False (and count a rejection) when full."""
        if len(self._items) >= self.capacity:
            self.total_rejected += 1
            return False
        self._items.append(item)
        self.total_accepted += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))
        return True

    def push(self, item: T) -> None:
        """Enqueue or raise :class:`BufferOverflowError`."""
        if not self.offer(item):
            raise BufferOverflowError(
                f"{self.name}: overflow at capacity {self.capacity}"
            )

    # -- removal -------------------------------------------------------------

    def pop(self) -> T:
        if not self._items:
            raise IndexError(f"{self.name}: pop from empty buffer")
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    # -- state ---------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __repr__(self) -> str:
        return f"FiniteBuffer({self.name!r}, {self.occupancy}/{self.capacity})"


class CreditCounter:
    """End-to-end credit-based flow control state.

    Models the software preallocation discipline: a sender holds credits
    equal to the receiver-side buffer space reserved for it and may only
    inject while it has credits; acknowledgements return credits.
    """

    def __init__(self, initial_credits: int) -> None:
        if initial_credits < 0:
            raise ValueError("credits must be non-negative")
        self.credits = initial_credits
        self.total_consumed = 0
        self.total_returned = 0

    def try_consume(self, amount: int = 1) -> bool:
        if self.credits < amount:
            return False
        self.credits -= amount
        self.total_consumed += amount
        return True

    def refund(self, amount: int = 1) -> None:
        self.credits += amount
        self.total_returned += amount

    def __repr__(self) -> str:
        return f"CreditCounter(credits={self.credits})"
