"""Network packets.

The CM-5 data network carries packets of five 32-bit words: one header word
(destination + tag) plus four words of user data (Section 3.1).  Our
:class:`Packet` generalizes the payload size ``n`` so the Figure 8 packet
size sweeps work, keeps protocol metadata (sequence numbers, buffer
offsets) in explicit header fields, and carries a software-visible
checksum so fault *detection* can be modelled without fault *correction*.
"""

from __future__ import annotations

import enum
import itertools
import zlib
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


class PacketType(enum.Enum):
    """Protocol-level packet roles (encoded in the CM-5 tag word)."""

    ACTIVE_MESSAGE = "am"
    XFER_REQUEST = "xfer_request"
    XFER_REPLY = "xfer_reply"
    XFER_DATA = "xfer_data"
    XFER_ACK = "xfer_ack"
    STREAM_DATA = "stream_data"
    STREAM_ACK = "stream_ack"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_packet_ids = itertools.count()


def compute_checksum(words: Tuple[int, ...]) -> int:
    """Packet-level checksum, standing in for the CM-5's CRC.

    The CM-5 network detects (but does not correct) packet errors; our NI
    models recompute this over the payload on extraction.
    """
    data = b"".join(int(w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
    return zlib.crc32(data)


@dataclass(frozen=True)
class Packet:
    """A single hardware packet.

    Attributes
    ----------
    src, dst:
        Node ids.
    ptype:
        Protocol role (maps onto the CM-5 tag word).
    payload:
        Tuple of data words; at most ``n`` words for packet size ``n``.
    handler:
        Active-message handler name dispatched at the destination.
    seq:
        Channel sequence number (indefinite-sequence protocol).
    offset:
        Destination buffer offset in words (finite-sequence protocol).
    segment:
        Communication segment id (finite-sequence protocol).
    corrupted:
        Set in flight by the fault injector; checked against ``checksum``.
    """

    src: int
    dst: int
    ptype: PacketType
    payload: Tuple[int, ...] = ()
    handler: str = ""
    seq: Optional[int] = None
    offset: Optional[int] = None
    segment: Optional[int] = None
    size_hint: Optional[int] = None
    checksum: int = field(default=-1)
    corrupted: bool = False
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.checksum == -1:
            object.__setattr__(self, "checksum", compute_checksum(self.payload))

    # -- properties -----------------------------------------------------------

    @property
    def data_words(self) -> int:
        """Number of payload words carried."""
        return len(self.payload)

    @property
    def wire_words(self) -> int:
        """Total words on the wire: one header word plus the payload
        (the CM-5's 5-word packet at n = 4)."""
        return 1 + self.data_words

    def checksum_ok(self) -> bool:
        """True iff the payload matches the checksum and the packet was not
        marked corrupt in flight."""
        return (not self.corrupted) and compute_checksum(self.payload) == self.checksum

    # -- flight mutations -------------------------------------------------------

    def corrupt(self) -> "Packet":
        """Return a corrupted copy (as the fault injector would produce)."""
        return replace(self, corrupted=True)

    def retransmission(self) -> "Packet":
        """A fresh copy for retransmission (new packet identity, clean)."""
        return replace(self, corrupted=False, packet_id=next(_packet_ids))

    def __str__(self) -> str:
        bits = [f"{self.ptype}", f"{self.src}->{self.dst}"]
        if self.seq is not None:
            bits.append(f"seq={self.seq}")
        if self.offset is not None:
            bits.append(f"off={self.offset}")
        if self.segment is not None:
            bits.append(f"seg={self.segment}")
        bits.append(f"{self.data_words}w")
        return f"Packet({', '.join(bits)})"
