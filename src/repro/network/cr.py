"""Service-level model of a Compressionless Routing (CR) network.

Section 4 of the paper rebuilds the messaging layer on a routing substrate
that provides three services in hardware:

* **Order-preserving transmission** — messages issued in sequence from a
  sender begin arriving before they fully enter the network, so a channel
  can never reorder.
* **Deadlock freedom independent of acceptance guarantees** — if a
  destination cannot absorb a message, the network tears the message's
  path down (killing the worm) and the source retransmits later; other
  traffic keeps flowing.  The messaging layer models this as *header
  rejection*: a destination may refuse a message's header packet and the
  "hardware" retries transparently.
* **Packet-level fault tolerance** — acceptance of the last flit acts as an
  implicit end-to-end acknowledgement; a damaged packet is killed and
  retransmitted by hardware, invisibly to software.

All three behaviours happen *without charging any software instructions* —
that is the entire point of Section 4, and the tests freeze the endpoint
processors during hardware retries to prove it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.network.faults import FaultInjector
from repro.network.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.stats import Counter
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class CRNetworkConfig:
    """Tunables for the CR model."""

    #: Hardware packet payload limit in words (kept at the CM-5's 4 for the
    #: paper's apples-to-apples comparison, Section 4).
    packet_size: int = 4
    #: One-way latency of a successful packet.
    latency: float = 10.0
    #: Extra latency for a hardware kill-and-retransmit cycle.
    retry_latency: float = 20.0
    #: Backoff before re-offering a header the destination rejected.
    reject_backoff: float = 50.0
    #: Give up after this many consecutive rejections of one packet
    #: (prevents a livelocked simulation from spinning forever).
    max_rejects: int = 1000

    def __post_init__(self) -> None:
        if self.packet_size < 1:
            raise ValueError("packet_size must be positive")


class _CRChannel:
    """Per-(src, dst) FIFO of packets awaiting in-order delivery."""

    def __init__(self) -> None:
        self.queue: Deque[Tuple[int, Packet]] = deque()
        self.busy = False
        self.next_index = 0


class CRNetwork:
    """The paper's Section 4 network substrate."""

    provides_in_order = True
    provides_flow_control = True
    provides_reliability = True

    def __init__(
        self,
        sim: Simulator,
        config: Optional[CRNetworkConfig] = None,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.config = config or CRNetworkConfig()
        self.injector = injector or FaultInjector()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.counters = Counter()
        self._channels: Dict[Tuple[int, int], _CRChannel] = {}
        self._callbacks: Dict[int, Callable[[Packet], None]] = {}
        self._acceptors: Dict[int, Callable[[Packet], bool]] = {}

    # -- binding -----------------------------------------------------------------

    def attach(self, node_id: int, deliver: Callable[[Packet], None]) -> None:
        self._callbacks[node_id] = deliver

    def set_acceptor(self, node_id: int, acceptor: Optional[Callable[[Packet], bool]]) -> None:
        """Install the hardware acceptance check for header packets.

        CR lets a destination that has committed all its resources reject
        an incoming message at the header without deadlocking the network
        (Section 4.1).  ``None`` removes the check (accept everything).
        """
        if acceptor is None:
            self._acceptors.pop(node_id, None)
        else:
            self._acceptors[node_id] = acceptor

    # -- injection ----------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Inject one packet; hardware guarantees eventual in-order,
        fault-free delivery (or indefinite rejection by the acceptor)."""
        if packet.data_words > self.config.packet_size:
            raise ValueError(
                f"packet carries {packet.data_words} words; hardware limit is "
                f"{self.config.packet_size}"
            )
        channel = self._channel(packet.src, packet.dst)
        index = channel.next_index
        channel.next_index += 1
        self.counters.incr("injected")
        self.counters.incr("injected_words", packet.data_words)
        self.tracer.emit(self.sim.now, "cr.inject", str(packet), index=index)
        channel.queue.append((index, packet))
        if not channel.busy:
            channel.busy = True
            self.sim.schedule(
                self.config.latency,
                lambda: self._attempt(channel, rejects=0),
                label="cr.head",
            )

    # -- in-order delivery pump -----------------------------------------------------

    def _attempt(self, channel: _CRChannel, rejects: int) -> None:
        if not channel.queue:
            channel.busy = False
            return
        index, packet = channel.queue[0]

        # Hardware fault handling: a corrupted or dropped packet is killed
        # and retransmitted by the routing substrate — software never sees it.
        survivor = self.injector.apply(packet, index)
        if survivor is None or not survivor.checksum_ok():
            self.counters.incr("hardware_retries")
            self.tracer.emit(self.sim.now, "cr.hw_retry", str(packet), index=index)
            retry = packet.retransmission()
            channel.queue[0] = (index, retry)
            self.sim.schedule(
                self.config.retry_latency,
                lambda: self._attempt(channel, rejects),
                label="cr.retry",
            )
            return

        # Hardware acceptance check (header rejection).
        acceptor = self._acceptors.get(packet.dst)
        if acceptor is not None and not acceptor(survivor):
            self.counters.incr("rejections")
            self.tracer.emit(self.sim.now, "cr.reject", str(packet), index=index)
            if rejects + 1 >= self.config.max_rejects:
                raise RuntimeError(
                    f"packet {packet} rejected {self.config.max_rejects} times; "
                    "destination never accepted"
                )
            self.sim.schedule(
                self.config.reject_backoff,
                lambda: self._attempt(channel, rejects + 1),
                label="cr.reoffer",
            )
            return

        channel.queue.popleft()
        self.counters.incr("delivered")
        self.tracer.emit(self.sim.now, "cr.deliver", str(survivor), index=index)
        callback = self._callbacks.get(survivor.dst)
        if callback is None:
            self.counters.incr("undeliverable")
        else:
            callback(survivor)
        # Pump the next packet on this channel (back-to-back streaming).
        self.sim.call_now(lambda: self._attempt(channel, rejects=0), label="cr.next")

    # -- state ------------------------------------------------------------------------

    def _channel(self, src: int, dst: int) -> _CRChannel:
        key = (src, dst)
        channel = self._channels.get(key)
        if channel is None:
            channel = _CRChannel()
            self._channels[key] = channel
        return channel

    def in_flight(self) -> int:
        """Packets still queued inside the network."""
        return sum(len(c.queue) for c in self._channels.values())
