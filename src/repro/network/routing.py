"""Hop-selection policies for the detailed network models.

A policy picks one hop from the legal choices a topology offers.  One
choice list entry means the decision is forced; several entries are where
routing *features* live:

* :class:`DeterministicRouting` — always the first choice; per-channel
  order is preserved (the baseline the paper's Section 4 networks match).
* :class:`AdaptiveRouting` — uniform random choice; models the multipath
  adaptivity that produces arbitrary delivery order (Section 2.2).
* :class:`CongestionAwareRouting` — least-occupied choice; an ablation
  showing that smarter adaptivity still reorders.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.network.topology import Vertex


class RoutingPolicy:
    """Base class for hop selection."""

    #: True when the policy can reorder packets of one channel.
    reorders = False

    def choose(self, choices: List[Vertex], occupancy: Callable[[Vertex], int]) -> Vertex:
        """Pick the next hop.  ``occupancy`` maps a router vertex to its
        current input-buffer occupancy (for load-aware policies)."""
        raise NotImplementedError


class DeterministicRouting(RoutingPolicy):
    """Always the first legal hop: single path, order preserving."""

    reorders = False

    def choose(self, choices: List[Vertex], occupancy) -> Vertex:
        return choices[0]


class AdaptiveRouting(RoutingPolicy):
    """Uniform random choice among legal hops (oblivious adaptivity)."""

    reorders = True

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)

    def choose(self, choices: List[Vertex], occupancy) -> Vertex:
        if len(choices) == 1:
            return choices[0]
        return self.rng.choice(choices)


class CongestionAwareRouting(RoutingPolicy):
    """Pick the least-occupied next router, random tie-break."""

    reorders = True

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self.rng = rng or random.Random(0)

    def choose(self, choices: List[Vertex], occupancy) -> Vertex:
        if len(choices) == 1:
            return choices[0]
        loads = [(occupancy(v), i) for i, v in enumerate(choices)]
        best = min(load for load, _ in loads)
        candidates = [choices[i] for load, i in loads if load == best]
        if len(candidates) == 1:
            return candidates[0]
        return self.rng.choice(candidates)
