"""Hop-by-hop detailed network simulation.

Packets traverse a :class:`~repro.network.topology.Topology` one router at
a time on the discrete-event kernel.  Each router has a finite input buffer
(backpressure stalls the upstream hop when it fills) and a service rate
(one packet per ``service_time``), so congestion produces queueing delay —
and queueing delay plus multipath adaptivity produces the emergent
out-of-order delivery that the service-level CM-5 model abstracts as a
:class:`~repro.network.delivery.DeliveryModel`.

This detailed backend exposes the same ``attach``/``inject`` interface as
the service-level networks, so the full messaging protocols can run over
it unchanged (integration tests and examples do exactly that).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.network.faults import FaultInjector
from repro.network.flowcontrol import FiniteBuffer
from repro.network.packet import Packet
from repro.network.routing import DeterministicRouting, RoutingPolicy
from repro.network.topology import Topology, Vertex
from repro.sim.engine import Simulator
from repro.sim.stats import Counter, RunningStats
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class RouterState:
    """Per-router dynamic state: one lane (buffer + service cursor) per
    virtual channel, plus a FIFO of packets waiting for a free slot.

    Backpressure is fair: a packet refused entry parks in ``waiters`` and
    is admitted the moment a slot frees, in arrival order — so blocked
    packets can never be overtaken by later arrivals at the same router
    (single-path deterministic routing stays order-preserving under any
    load, as real FIFO wormhole backpressure does)."""

    buffers: List[FiniteBuffer]
    next_free: List[float]
    waiters: Deque[Tuple[Packet, "Vertex", int]] = field(default_factory=deque)

    @property
    def occupancy(self) -> int:
        return sum(buf.occupancy for buf in self.buffers)

    @property
    def peak_occupancy(self) -> int:
        return max(buf.peak_occupancy for buf in self.buffers)


@dataclass
class ChannelOrderTracker:
    """Classifies deliveries on one (src, dst) channel as in/out of order."""

    expected: int = 0
    early: set = field(default_factory=set)
    ooo_count: int = 0
    delivered: int = 0

    def record(self, index: int) -> bool:
        """Record a delivery; return True if it was out of order."""
        self.delivered += 1
        if index == self.expected:
            self.expected += 1
            while self.expected in self.early:
                self.early.remove(self.expected)
                self.expected += 1
            return False
        self.early.add(index)
        self.ooo_count += 1
        return True

    @property
    def ooo_fraction(self) -> float:
        return self.ooo_count / self.delivered if self.delivered else 0.0


class DetailedNetwork:
    """Router-level packet transport over a topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        routing: Optional[RoutingPolicy] = None,
        hop_latency: float = 1.0,
        service_time: float = 1.0,
        buffer_capacity: int = 8,
        stall_delay: float = 0.5,
        injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
        virtual_channels: int = 1,
        vc_rng=None,
    ) -> None:
        """``virtual_channels`` > 1 gives each router independent lanes
        sharing the physical link bandwidth (per-lane service time scales
        with the lane count).  Packets pick a lane at random per hop, so a
        packet on an empty lane overtakes packets queued on a busy one —
        Section 2.2's virtual-channel reordering, even on a single
        deterministic path."""
        if virtual_channels < 1:
            raise ValueError("need at least one virtual channel")
        self.sim = sim
        self.topology = topology
        self.routing = routing or DeterministicRouting()
        self.hop_latency = hop_latency
        self.service_time = service_time
        self.buffer_capacity = buffer_capacity
        self.stall_delay = stall_delay
        self.injector = injector or FaultInjector()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.virtual_channels = virtual_channels
        import random as _random

        self.vc_rng = vc_rng or _random.Random(0)
        self.counters = Counter()
        self.latency_stats = RunningStats()
        self._routers: Dict[Vertex, RouterState] = {}
        self._delivery_callbacks: Dict[int, Callable[[Packet], None]] = {}
        self._channel_counters: Dict[tuple, int] = {}
        self._order_trackers: Dict[tuple, ChannelOrderTracker] = {}
        self._inject_times: Dict[int, float] = {}

    # -- endpoint binding --------------------------------------------------------

    def attach(self, node_id: int, deliver: Callable[[Packet], None]) -> None:
        """Register the destination callback for an endpoint."""
        if node_id not in set(self.topology.endpoints):
            raise ValueError(f"node {node_id} is not a topology endpoint")
        self._delivery_callbacks[node_id] = deliver

    # -- injection -----------------------------------------------------------------

    def inject(self, packet: Packet) -> None:
        """Enter a packet at its source endpoint at the current sim time."""
        channel = (packet.src, packet.dst)
        index = self._channel_counters.get(channel, 0)
        self._channel_counters[channel] = index + 1
        maybe = self.injector.apply(packet, index)
        self.counters.incr("injected")
        self._inject_times[packet.packet_id] = self.sim.now
        self.tracer.emit(self.sim.now, "net.inject", str(packet))
        if maybe is None:
            self.counters.incr("dropped_in_flight")
            return
        self._advance(maybe, at=packet.src, order_index=index)

    # -- movement -----------------------------------------------------------------

    def _advance(self, packet: Packet, at: Vertex, order_index: int) -> None:
        """Move the packet one hop from ``at``."""
        if at == packet.dst:
            self._deliver(packet, order_index)
            return
        choices = self.topology.next_hops(at, packet.dst)
        nxt = self.routing.choose(choices, self._occupancy)
        if isinstance(nxt, int):
            # Final hop: eject to the endpoint after the link latency.
            self.sim.schedule(
                self.hop_latency,
                lambda: self._deliver(packet, order_index),
                label="net.eject",
            )
            return
        state = self._router_state(nxt)
        vc = (
            self.vc_rng.randrange(self.virtual_channels)
            if self.virtual_channels > 1
            else 0
        )
        if not self._try_enter(packet, nxt, state, vc, order_index):
            # Backpressure: park in arrival order until a slot frees.
            self.counters.incr("stalls")
            state.waiters.append((packet, nxt, order_index))

    def _try_enter(self, packet: Packet, router: Vertex, state: RouterState,
                   vc: int, order_index: int) -> bool:
        if not state.buffers[vc].offer(packet):
            return False
        arrive = self.sim.now + self.hop_latency
        # Lanes share the physical link: per-lane service slows with count.
        lane_service = self.service_time * self.virtual_channels
        depart = max(arrive, state.next_free[vc]) + lane_service
        state.next_free[vc] = depart
        self.sim.schedule_at(
            depart,
            lambda: self._depart(packet, router, vc, order_index),
            label="net.hop",
        )
        return True

    def _depart(self, packet: Packet, router: Vertex, vc: int,
                order_index: int) -> None:
        state = self._router_state(router)
        popped = state.buffers[vc].pop()
        if popped is not packet:
            # FIFO service within a lane: the head departs first.  Because
            # departures are scheduled in arrival order with a monotone
            # cursor, head==packet holds; anything else is a kernel bug.
            raise RuntimeError("router service order violated")
        # A slot just freed on this lane: admit the oldest waiter to it.
        if state.waiters:
            waiting_packet, waiting_router, waiting_index = state.waiters.popleft()
            admitted = self._try_enter(
                waiting_packet, waiting_router, state, vc, waiting_index
            )
            if not admitted:  # pragma: no cover - the freed slot was on vc
                state.waiters.appendleft(
                    (waiting_packet, waiting_router, waiting_index)
                )
        self._advance(packet, router, order_index)

    def _deliver(self, packet: Packet, order_index: int) -> None:
        tracker = self._order_trackers.setdefault(
            (packet.src, packet.dst), ChannelOrderTracker()
        )
        was_ooo = tracker.record(order_index)
        self.counters.incr("delivered")
        if was_ooo:
            self.counters.incr("delivered_ooo")
        injected_at = self._inject_times.pop(packet.packet_id, self.sim.now)
        self.latency_stats.add(self.sim.now - injected_at)
        self.tracer.emit(
            self.sim.now, "net.deliver", str(packet), ooo=was_ooo
        )
        callback = self._delivery_callbacks.get(packet.dst)
        if callback is None:
            self.counters.incr("undeliverable")
            return
        callback(packet)

    # -- state ---------------------------------------------------------------------

    def _router_state(self, vertex: Vertex) -> RouterState:
        state = self._routers.get(vertex)
        if state is None:
            state = RouterState(
                buffers=[
                    FiniteBuffer(
                        self.buffer_capacity, name=f"router{vertex}.vc{vc}"
                    )
                    for vc in range(self.virtual_channels)
                ],
                next_free=[0.0] * self.virtual_channels,
            )
            self._routers[vertex] = state
        return state

    def _occupancy(self, vertex: Vertex) -> int:
        state = self._routers.get(vertex)
        return state.occupancy if state else 0

    def ooo_fraction(self, src: int, dst: int) -> float:
        """Measured out-of-order fraction on one channel."""
        tracker = self._order_trackers.get((src, dst))
        return tracker.ooo_fraction if tracker else 0.0

    def peak_buffer_occupancy(self) -> int:
        return max(
            (state.peak_occupancy for state in self._routers.values()),
            default=0,
        )
