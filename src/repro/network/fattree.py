"""CM-5-style fat-tree topology.

The CM-5 data network is a 4-ary fat tree in which each router has several
parents, so a packet climbing toward the least common ancestor of source
and destination picks among multiple equivalent up-links.  That multipath
adaptivity is exactly the hardware feature the paper blames for *arbitrary
delivery order* — two packets of one message can climb different sub-trees
and overtake each other.

Construction: ``arity`` children per router, ``parents`` up-links per
router, ``height`` levels of routers above the leaves.  At level ``l``
(1-based) each group of ``arity**l`` consecutive leaves is served by
``parents**(l-1)`` duplicate routers, wired butterfly-style so every
down-route is uniquely determined while up-routes multiply.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.network.topology import Topology, Vertex

RouterId = Tuple[str, int, int, int]  # ("r", level, group, index)


class FatTree(Topology):
    """A ``arity``-ary fat tree with ``parents``-fold up-link duplication."""

    def __init__(self, arity: int = 4, height: int = 2, parents: int = 2) -> None:
        if arity < 2:
            raise ValueError("arity must be >= 2")
        if height < 1:
            raise ValueError("height must be >= 1")
        if parents < 1:
            raise ValueError("parents must be >= 1")
        self.arity = arity
        self.height = height
        self.parents = parents
        self.n_leaves = arity**height

    # -- structure queries ----------------------------------------------------

    @property
    def endpoints(self) -> Sequence[int]:
        return range(self.n_leaves)

    def routers_at_level(self, level: int) -> int:
        """Router count at one level: groups x duplicates."""
        groups = self.arity ** (self.height - level)
        return groups * self.duplicates(level)

    def duplicates(self, level: int) -> int:
        """Duplicate routers per leaf-group at ``level``."""
        return self.parents ** (level - 1)

    def vertices(self):
        yield from self.endpoints
        for level in range(1, self.height + 1):
            groups = self.arity ** (self.height - level)
            for group in range(groups):
                for index in range(self.duplicates(level)):
                    yield ("r", level, group, index)

    def group_of(self, leaf: int, level: int) -> int:
        """Index of the level-``level`` group containing ``leaf``."""
        return leaf // (self.arity**level)

    def lca_level(self, src: int, dst: int) -> int:
        """Lowest level at which src and dst share a group."""
        if src == dst:
            return 0
        level = 1
        while self.group_of(src, level) != self.group_of(dst, level):
            level += 1
        return level

    # -- routing --------------------------------------------------------------

    def next_hops(self, at: Vertex, dst: int) -> List[Vertex]:
        self._check_endpoint(dst)
        if at == dst:
            return []
        if isinstance(at, int):
            # Leaf: exactly one level-1 router serves its group... unless
            # parents-fold duplication starts at level 1 (duplicates(1) == 1
            # always, so the first hop is deterministic, as on the CM-5).
            self._check_endpoint(at)
            return [("r", 1, self.group_of(at, 1), 0)]
        kind, level, group, index = at
        if kind != "r":  # pragma: no cover - defensive
            raise ValueError(f"unknown vertex {at!r}")
        span = self.arity**level
        if group == dst // span:
            return [self._down_hop(level, index, dst)]
        return self._up_hops(level, group, index)

    def _down_hop(self, level: int, index: int, dst: int) -> Vertex:
        if level == 1:
            return dst
        child_level = level - 1
        child_group = dst // (self.arity**child_level)
        child_index = index % self.duplicates(child_level)
        return ("r", child_level, child_group, child_index)

    def _up_hops(self, level: int, group: int, index: int) -> List[Vertex]:
        if level >= self.height:
            raise ValueError(
                f"cannot route up from the root level (level={level})"
            )
        parent_level = level + 1
        parent_group = group // self.arity
        dup = self.duplicates(level)
        return [
            ("r", parent_level, parent_group, index + j * dup)
            for j in range(self.parents)
        ]

    def _check_endpoint(self, node: int) -> None:
        if not 0 <= node < self.n_leaves:
            raise ValueError(f"endpoint {node} out of range [0, {self.n_leaves})")

    def up_path_diversity(self, src: int, dst: int) -> int:
        """Distinct minimal paths between two leaves: parents^(lca_level-1)."""
        lca = self.lca_level(src, dst)
        if lca == 0:
            return 1
        return self.parents ** (lca - 1)

    def __repr__(self) -> str:
        return (
            f"FatTree(arity={self.arity}, height={self.height}, "
            f"parents={self.parents}, leaves={self.n_leaves})"
        )
