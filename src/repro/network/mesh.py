"""2-D mesh topology with deterministic (XY) and adaptive-minimal routing.

Included as the contrasting substrate for the network-design ablations
(Section 5 "Implications for network design"): dimension-order routing on a
mesh preserves per-channel order, while minimal-adaptive routing (Turn
model style) introduces the same reordering behaviour the fat tree shows.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.network.topology import Topology, Vertex

MeshRouter = Tuple[str, int, int]  # ("m", x, y)


class Mesh2D(Topology):
    """A width x height mesh; endpoint ``i`` lives at router
    ``(i % width, i // width)``."""

    def __init__(self, width: int, height: int, adaptive: bool = False) -> None:
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.width = width
        self.height = height
        self.adaptive = adaptive

    # -- structure --------------------------------------------------------------

    @property
    def endpoints(self) -> Sequence[int]:
        return range(self.width * self.height)

    def coords(self, node: int) -> Tuple[int, int]:
        if not 0 <= node < self.width * self.height:
            raise ValueError(f"endpoint {node} out of range")
        return node % self.width, node // self.width

    def router_of(self, node: int) -> MeshRouter:
        x, y = self.coords(node)
        return ("m", x, y)

    def vertices(self):
        yield from self.endpoints
        for y in range(self.height):
            for x in range(self.width):
                yield ("m", x, y)

    # -- routing ---------------------------------------------------------------

    def next_hops(self, at: Vertex, dst: int) -> List[Vertex]:
        dx, dy = self.coords(dst)
        if at == dst:
            return []
        if isinstance(at, int):
            return [self.router_of(at)]
        kind, x, y = at
        if kind != "m":  # pragma: no cover - defensive
            raise ValueError(f"unknown vertex {at!r}")
        if (x, y) == (dx, dy):
            return [dst]  # eject to the endpoint
        moves: List[Vertex] = []
        step_x = ("m", x + (1 if dx > x else -1), y) if x != dx else None
        step_y = ("m", x, y + (1 if dy > y else -1)) if y != dy else None
        if self.adaptive:
            # Minimal adaptive: either productive dimension.
            if step_x is not None:
                moves.append(step_x)
            if step_y is not None:
                moves.append(step_y)
        else:
            # Dimension-order (XY): finish X first.
            if step_x is not None:
                moves.append(step_x)
            elif step_y is not None:
                moves.append(step_y)
        return moves

    def manhattan(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def __repr__(self) -> str:
        mode = "adaptive" if self.adaptive else "xy"
        return f"Mesh2D({self.width}x{self.height}, {mode})"
