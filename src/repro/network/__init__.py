"""Routing-network substrates.

Two levels of modelling coexist:

* **Service-level networks** (:mod:`repro.network.cm5`,
  :mod:`repro.network.cr`) expose exactly the service features the paper's
  argument turns on — delivery order, buffering behaviour, fault handling —
  through a small injection/delivery interface the NI models bind to.  The
  calibrated cost measurements run on these.
* **Detailed networks** (:mod:`repro.network.fattree`,
  :mod:`repro.network.mesh`, :mod:`repro.network.router`,
  :mod:`repro.network.routing`) simulate hop-by-hop packet movement through
  finite-buffer routers, demonstrating *where* arbitrary delivery order
  comes from (adaptive multipath routing) and feeding measured reorder
  fractions into the service-level models.
"""

from repro.network.packet import Packet, PacketType, compute_checksum
from repro.network.cm5 import CM5Network, CM5NetworkConfig
from repro.network.cr import CRNetwork, CRNetworkConfig
from repro.network.delivery import (
    DeliveryModel,
    InOrderDelivery,
    PairSwapReorder,
    HeadDelayReorder,
    FractionReorder,
    RandomReorder,
    TimesharingReorder,
)
from repro.network.faults import FaultInjector, FaultPlan, FaultKind

__all__ = [
    "Packet",
    "PacketType",
    "compute_checksum",
    "CM5Network",
    "CM5NetworkConfig",
    "CRNetwork",
    "CRNetworkConfig",
    "DeliveryModel",
    "InOrderDelivery",
    "PairSwapReorder",
    "HeadDelayReorder",
    "FractionReorder",
    "RandomReorder",
    "TimesharingReorder",
    "FaultInjector",
    "FaultPlan",
    "FaultKind",
]
