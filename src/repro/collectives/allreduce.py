"""All-reduce: every rank ends with the global sum.

Composed as reduce-to-root followed by broadcast-from-root — the textbook
two-phase algorithm, which also demonstrates collective *composition* on
this stack: the broadcast must not start until the reduction delivers,
which the completion callbacks sequence naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.collectives.broadcast import BroadcastHandle, broadcast
from repro.collectives.cluster import Cluster
from repro.collectives.reduce import ReduceHandle, reduce_sum


@dataclass
class AllReduceHandle:
    """Observable state of one all-reduce."""

    n: int
    reduce_handle: Optional[ReduceHandle] = None
    broadcast_handle: Optional[BroadcastHandle] = None

    @property
    def completed(self) -> bool:
        return (
            self.broadcast_handle is not None
            and self.broadcast_handle.completed
        )

    def result_at(self, rank: int) -> Optional[List[int]]:
        if self.broadcast_handle is None:
            return None
        return self.broadcast_handle.data_at(rank)


def allreduce_sum(
    cluster: Cluster, contributions: List[List[int]], root: int = 0
) -> AllReduceHandle:
    """Word-wise sum of all contributions, delivered to every rank.

    Drive the cluster until quiescent *twice is not needed*: the
    broadcast is kicked off from inside the reduction's completion, so a
    single ``cluster.run()`` finishes the whole collective.
    """
    handle = AllReduceHandle(n=cluster.n)
    handle.reduce_handle = reduce_sum(cluster, root=root, contributions=contributions)

    def watch_reduction() -> None:
        if handle.reduce_handle.completed:
            # Rebind the bulk handlers for the broadcast phase.
            handle.broadcast_handle = broadcast(
                cluster, root=root, data=handle.reduce_handle.result
            )
        else:
            cluster.sim.schedule(1.0, watch_reduction, label="allreduce.watch")

    cluster.sim.call_now(watch_reduction, label="allreduce.watch")
    return handle
