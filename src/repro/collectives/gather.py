"""Gather: every rank's block collected at the root.

Direct (flat) gather: each non-root rank bulk-sends its block to the root;
the root identifies contributors by the transfer's source and assembles
``results[rank]``.  Stresses concurrent inbound transfers at one node —
the root's segment table (CMAM) or per-source cursor table (CR) keeps the
interleaved streams apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.collectives.cluster import Cluster


@dataclass
class GatherHandle:
    """Observable state of one gather."""

    root: int
    n: int
    results: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return len(self.results) == self.n

    def assembled(self) -> List[int]:
        """All blocks concatenated in rank order (requires completion)."""
        if not self.completed:
            raise RuntimeError("gather not complete")
        out: List[int] = []
        for rank in range(self.n):
            out.extend(self.results[rank])
        return out


def gather(cluster: Cluster, root: int, blocks: List[List[int]]) -> GatherHandle:
    """Collect ``blocks[rank]`` from every rank at ``root``."""
    n = cluster.n
    if len(blocks) != n:
        raise ValueError("need exactly one block per rank")
    if any(not block for block in blocks):
        raise ValueError("blocks must be non-empty")
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")

    handle = GatherHandle(root=root, n=n)
    handle.results[root] = list(blocks[root])

    def on_block(src: int, data: List[int]) -> None:
        if src in handle.results:
            raise RuntimeError(f"duplicate gather contribution from {src}")
        handle.results[src] = list(data)

    cluster.on_bulk(root, on_block)
    for rank in range(n):
        if rank != root:
            cluster.send_bulk(rank, root, blocks[rank])
    return handle
