"""Scatter and all-to-all personalized communication.

* :func:`scatter` — the root sends a distinct block to every rank
  (sequential sends from the root: the xfer interface allows one
  outstanding transfer per sender).
* :func:`alltoall` — every rank sends a distinct block to every other
  rank; N·(N-1) simultaneous transfers that exercise concurrent
  reassembly at every node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.collectives.cluster import Cluster


@dataclass
class ScatterHandle:
    """Observable state of one scatter."""

    root: int
    n: int
    received: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return len(self.received) == self.n


def scatter(cluster: Cluster, root: int, blocks: List[List[int]]) -> ScatterHandle:
    """Deliver ``blocks[rank]`` to each rank from ``root``."""
    n = cluster.n
    if len(blocks) != n:
        raise ValueError("need exactly one block per rank")
    if any(not block for block in blocks):
        raise ValueError("blocks must be non-empty")
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")

    handle = ScatterHandle(root=root, n=n)
    handle.received[root] = list(blocks[root])

    for rank in range(n):
        if rank != root:
            cluster.on_bulk(
                rank,
                lambda _src, data, rank=rank: handle.received.__setitem__(
                    rank, list(data)
                ),
            )

    targets = [rank for rank in range(n) if rank != root]

    def send_next(remaining: List[int]) -> None:
        if not remaining:
            return
        target, rest = remaining[0], remaining[1:]
        cluster.send_bulk(
            root, target, blocks[target], on_sent=lambda: send_next(rest)
        )

    send_next(targets)
    return handle


@dataclass
class AllToAllHandle:
    """Observable state of one all-to-all exchange."""

    n: int
    #: received[dst][src] = block
    received: Dict[int, Dict[int, List[int]]] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return all(
            len(self.received.get(rank, {})) == self.n for rank in range(self.n)
        )


def alltoall(cluster: Cluster, blocks: List[List[List[int]]]) -> AllToAllHandle:
    """Exchange ``blocks[src][dst]`` between every pair of ranks.

    Each source serializes its N-1 outgoing transfers; all sources run
    concurrently, so every destination reassembles N-1 interleaved
    inbound transfers at once.
    """
    n = cluster.n
    if len(blocks) != n or any(len(row) != n for row in blocks):
        raise ValueError("blocks must be an n x n matrix")
    handle = AllToAllHandle(n=n)
    for rank in range(n):
        handle.received[rank] = {rank: list(blocks[rank][rank])}

    for rank in range(n):
        cluster.on_bulk(
            rank,
            lambda src, data, rank=rank: handle.received[rank].__setitem__(
                src, list(data)
            ),
        )

    def make_chain(src: int):
        def send_next(remaining: List[int]) -> None:
            if not remaining:
                return
            dst, rest = remaining[0], remaining[1:]
            cluster.send_bulk(
                src, dst, blocks[src][dst],
                on_sent=lambda: send_next(rest),
            )

        return send_next

    for src in range(n):
        targets = [dst for dst in range(n) if dst != src]
        make_chain(src)(targets)
    return handle
