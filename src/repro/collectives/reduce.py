"""Binomial-tree sum reduction.

The mirror image of broadcast: every rank contributes an equal-length
vector of words; partial sums flow up the binomial tree (children combine
into parents, word-wise modulo 2^32), and the full sum lands at the root.
Combination work is charged to the USER feature — it is application
compute, not messaging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.attribution import Feature
from repro.collectives.cluster import Cluster

_MASK = 0xFFFFFFFF


@dataclass
class ReduceHandle:
    """Observable state of one reduction."""

    root: int
    n: int
    result: Optional[List[int]] = None
    contributions_combined: int = 0

    @property
    def completed(self) -> bool:
        return self.result is not None


def _parent(rel: int) -> int:
    """Clear the highest set bit: the binomial parent."""
    return rel - (1 << (rel.bit_length() - 1))


def _expected_children(rel: int, n: int) -> int:
    count = 0
    k = 0
    while (1 << k) < n:
        if (1 << k) > rel and rel + (1 << k) < n:
            count += 1
        k += 1
    return count


def reduce_sum(
    cluster: Cluster, root: int, contributions: List[List[int]]
) -> ReduceHandle:
    """Reduce per-rank vectors to their word-wise sum at ``root``.

    ``contributions[rank]`` is rank's vector; all must share one length.
    """
    n = cluster.n
    if len(contributions) != n:
        raise ValueError("need exactly one contribution per rank")
    width = len(contributions[0])
    if width == 0 or any(len(c) != width for c in contributions):
        raise ValueError("contributions must share one non-zero length")
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")

    handle = ReduceHandle(root=root, n=n)
    partial: Dict[int, List[int]] = {
        rank: list(contributions[rank]) for rank in range(n)
    }
    waiting: Dict[int, int] = {}

    def to_abs(rel: int) -> int:
        return (rel + root) % n

    def combine(rank: int, incoming: List[int]) -> None:
        mine = partial[rank]
        node = cluster.nodes[rank]
        with node.processor.attribute(Feature.USER):
            node.processor.reg_ops(len(incoming))  # the adds
            node.processor.mem_ops((len(incoming) + 1) // 2)  # accumulator traffic
        for i, word in enumerate(incoming):
            mine[i] = (mine[i] + word) & _MASK
        handle.contributions_combined += 1
        waiting[rank] -= 1
        maybe_forward(rank)

    def maybe_forward(rank: int) -> None:
        if waiting[rank] > 0:
            return
        rel = (rank - root) % n
        if rel == 0:
            handle.result = list(partial[rank])
            return
        parent_rank = to_abs(_parent(rel))
        cluster.send_bulk(rank, parent_rank, partial[rank])

    for rank in range(n):
        rel = (rank - root) % n
        waiting[rank] = _expected_children(rel, n)
        cluster.on_bulk(
            rank, lambda _src, block, rank=rank: combine(rank, block)
        )

    # Leaves (no children) fire immediately.
    for rank in range(n):
        maybe_forward(rank)
    return handle
