"""Binomial-tree broadcast of a data block.

The root's block fans out along a binomial tree: a rank that holds the
block forwards it to ranks ``rel + 2^k`` (relative to the root) for every
``2^k > rel``, largest subtree first.  Each hop is one finite-sequence
bulk transfer, so the collective's cost is exactly ``N - 1`` transfers'
worth of the paper's per-transfer numbers — cheap on CR, handshake-laden
on the CM-5.

Forwarding from one rank is serialized (the xfer interface supports one
outstanding send), chained on send completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.collectives.cluster import Cluster


@dataclass
class BroadcastHandle:
    """Observable state of one broadcast."""

    root: int
    n: int
    received: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        return len(self.received) == self.n

    def data_at(self, rank: int) -> Optional[List[int]]:
        return self.received.get(rank)


def _children(rel: int, n: int) -> List[int]:
    """Binomial-tree children of relative rank ``rel``, largest first."""
    kids = []
    k = 0
    while (1 << k) < n:
        if (1 << k) > rel and rel + (1 << k) < n:
            kids.append(rel + (1 << k))
        k += 1
    return list(reversed(kids))


def broadcast(cluster: Cluster, root: int, data: List[int]) -> BroadcastHandle:
    """Broadcast ``data`` from ``root`` to every rank; drive the simulator
    to completion and check the handle."""
    n = cluster.n
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range")
    if not data:
        raise ValueError("cannot broadcast an empty block")
    handle = BroadcastHandle(root=root, n=n)

    def to_abs(rel: int) -> int:
        return (rel + root) % n

    def forward_from(rank: int, block: List[int]) -> None:
        handle.received[rank] = list(block)
        rel = (rank - root) % n
        kids = [to_abs(c) for c in _children(rel, n)]

        def send_next(remaining: List[int]) -> None:
            if not remaining:
                return
            target, rest = remaining[0], remaining[1:]
            cluster.send_bulk(
                rank, target, block, on_sent=lambda: send_next(rest)
            )

        send_next(kids)

    for rank in range(n):
        if rank != root:
            cluster.on_bulk(
                rank,
                lambda _src, block, rank=rank: forward_from(rank, block),
            )

    forward_from(root, data)
    return handle
