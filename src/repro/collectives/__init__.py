"""Collective communication built on the messaging layer.

The paper's context is parallel programs ("a collection of computing
nodes work in concert") coordinating through messaging layers like CMMD
[25] and MPI [10].  This package provides the collectives such programs
run on — barrier, broadcast, reduce, gather — implemented as binomial /
dissemination algorithms over the repro protocol stack, so every
collective's software cost decomposes into the paper's per-transfer
numbers and the CM-5-versus-CR comparison extends from single transfers
to whole collective operations.
"""

from repro.collectives.cluster import Cluster
from repro.collectives.barrier import barrier
from repro.collectives.broadcast import broadcast
from repro.collectives.reduce import reduce_sum
from repro.collectives.gather import gather
from repro.collectives.scatter import scatter, alltoall
from repro.collectives.allreduce import allreduce_sum

__all__ = [
    "Cluster",
    "barrier",
    "broadcast",
    "reduce_sum",
    "gather",
    "scatter",
    "alltoall",
    "allreduce_sum",
]
