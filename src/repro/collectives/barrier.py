"""Dissemination barrier over active messages.

ceil(log2 N) rounds; in round r every rank sends a four-word active
message to ``(rank + 2^r) mod N`` and advances once it has received the
round-r message aimed at it.  Tolerates rounds arriving early (a fast
neighbour may be a round ahead) by counting per-round receipts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.am.cmam import cmam_4
from repro.collectives.cluster import Cluster

#: Handler work per barrier message: bump a round counter.
_HANDLER_REG_COST = 4


@dataclass
class BarrierHandle:
    """Observable state of one barrier operation."""

    n: int
    rounds: int
    done: List[bool] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return all(self.done)

    @property
    def completed_ranks(self) -> int:
        return sum(self.done)


class _BarrierState:
    """Per-rank progress through the dissemination rounds."""

    def __init__(self) -> None:
        self.round = 0
        self.received: Dict[int, int] = {}


_generation_counter = [0]


def barrier(cluster: Cluster) -> BarrierHandle:
    """Start a barrier across all ranks; returns a handle to observe.

    Drive the simulator (``cluster.run()``) to completion; the handle's
    ``completed`` flips to True only when every rank has finished every
    round — the defining property that no rank exits before all entered.
    """
    n = cluster.n
    rounds = max(1, math.ceil(math.log2(n))) if n > 1 else 0
    handle = BarrierHandle(n=n, rounds=rounds, done=[False] * n)
    if n == 1:
        handle.done[0] = True
        return handle

    generation = _generation_counter[0]
    _generation_counter[0] += 1
    handler_name = f"coll.barrier.{generation}"
    states = [_BarrierState() for _ in range(n)]

    def advance(rank: int) -> None:
        state = states[rank]
        while state.round < rounds and state.received.get(state.round, 0) > 0:
            state.received[state.round] -= 1
            state.round += 1
            if state.round < rounds:
                _send(rank, state.round)
            else:
                handle.done[rank] = True

    def _send(rank: int, round_no: int) -> None:
        peer = (rank + (1 << round_no)) % n
        cmam_4(
            cluster.nodes[rank], peer, handler_name,
            (round_no, rank, generation, 0), costs=cluster.costs,
        )

    def make_handler(rank: int):
        def on_barrier(node, round_no, _src, _gen, _pad) -> None:
            node.processor.reg_ops(_HANDLER_REG_COST)
            state = states[rank]
            state.received[round_no] = state.received.get(round_no, 0) + 1
            advance(rank)

        return on_barrier

    for rank in range(n):
        cluster.nodes[rank].register_handler(handler_name, make_handler(rank))

    # Kick off round 0 everywhere.
    for rank in range(n):
        _send(rank, 0)
    return handle
