"""A cluster of endpoints for collective operations."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.am.cmam import AMDispatcher
from repro.am.costs import CmamCosts
from repro.am.segments import Segment, SegmentTable
from repro.arch.counters import CostMatrix
from repro.node import Node
from repro.protocols.cr_protocols import CRFiniteReceiver, CRFiniteSender
from repro.protocols.finite_sequence import (
    FiniteSequenceReceiver,
    FiniteSequenceSender,
)
from repro.sim.engine import Simulator


class Cluster:
    """N nodes with dispatchers and reusable bulk-transfer plumbing.

    Collectives address nodes by *rank* (== node id here).  The cluster
    detects whether the network provides in-order reliable delivery and
    wires the cheap CR bulk path or the CMAM handshake path accordingly —
    the same service-flag dispatch the channels API uses.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Any,
        n_nodes: int,
        costs: Optional[CmamCosts] = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.sim = sim
        self.network = network
        self.n = n_nodes
        self.costs = costs or CmamCosts()
        self.hardware_services = bool(
            getattr(network, "provides_in_order", False)
            and getattr(network, "provides_reliability", False)
        )
        self.nodes: List[Node] = []
        self.dispatchers: List[AMDispatcher] = []
        self._bulk_handlers: Dict[int, Callable[[int, List[int]], None]] = {}
        self._baselines = []
        for rank in range(n_nodes):
            node = Node(rank, sim, network, packet_size=self.costs.n)
            dispatcher = AMDispatcher(node, costs=self.costs)
            self.nodes.append(node)
            self.dispatchers.append(dispatcher)
            self._wire_bulk_receiver(rank, node, dispatcher)
        self._baselines = [node.processor.snapshot() for node in self.nodes]

    # -- bulk plumbing ---------------------------------------------------------------

    def _wire_bulk_receiver(self, rank: int, node: Node, dispatcher: AMDispatcher) -> None:
        if self.hardware_services:
            def on_cr_complete(src: int, addr: int, words: int,
                               rank=rank, node=node) -> None:
                data = node.memory.read_block(addr, words)
                self._dispatch_bulk(rank, src=src, data=data)

            CRFiniteReceiver(node, dispatcher, costs=self.costs,
                             on_complete=on_cr_complete)
        else:
            def on_complete(segment: Segment, rank=rank, node=node) -> None:
                data = node.memory.read_block(segment.base_addr, segment.size_words)
                self._dispatch_bulk(rank, src=segment.owner, data=data)

            FiniteSequenceReceiver(
                node, dispatcher, costs=self.costs,
                segments=SegmentTable(capacity_segments=max(8, self.n)),
                on_complete=on_complete,
            )

    def _dispatch_bulk(self, rank: int, src: int, data: List[int]) -> None:
        handler = self._bulk_handlers.get(rank)
        if handler is None:
            raise RuntimeError(f"rank {rank} received a bulk block with no handler")
        handler(src, data)

    def on_bulk(self, rank: int, handler: Callable[[int, List[int]], None]) -> None:
        """Install rank's handler for arriving bulk blocks:
        ``handler(src_rank, data)``."""
        self._bulk_handlers[rank] = handler

    def send_bulk(
        self,
        src_rank: int,
        dst_rank: int,
        data: List[int],
        on_sent: Optional[Callable[[], None]] = None,
        scratch_addr: int = 0,
    ) -> None:
        """Start one bulk transfer; ``on_sent`` fires when the source may
        reuse its send state (ack on CMAM, immediately after injection on
        CR, where delivery is guaranteed)."""
        node = self.nodes[src_rank]
        node.memory.write_block(scratch_addr, data)
        if self.hardware_services:
            CRFiniteSender(
                node, dst_rank, scratch_addr, len(data), costs=self.costs
            ).start()
            if on_sent is not None:
                self.sim.call_now(on_sent, label="collective.sent")
        else:
            FiniteSequenceSender(
                node, self.dispatchers[src_rank], dst_rank,
                scratch_addr, len(data), costs=self.costs,
                on_complete=(lambda _sender: on_sent()) if on_sent else None,
            ).start()

    # -- measurement -------------------------------------------------------------------

    def reset_measurement(self) -> None:
        self._baselines = [node.processor.snapshot() for node in self.nodes]

    def costs_by_rank(self) -> List[CostMatrix]:
        return [
            node.processor.delta(baseline)
            for node, baseline in zip(self.nodes, self._baselines)
        ]

    def total_cost(self) -> int:
        return sum(matrix.total for matrix in self.costs_by_rank())

    def run(self) -> None:
        self.sim.run()
