"""Summary statistics for simulation outputs.

Small, dependency-light accumulators: exact counters, Welford running
moments, and fixed-bin histograms.  Benchmarks and experiments use these to
summarize latency/occupancy distributions from detailed network runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class Counter:
    """Named integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, by: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + by

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:
        return f"Counter({self._counts})"


class RunningStats:
    """Welford online mean/variance plus min/max."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "n": float(self.n),
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"RunningStats(n={self.n}, mean={self.mean:.3f}, stdev={self.stdev:.3f})"


@dataclass
class Histogram:
    """Fixed-width-bin histogram over [lo, hi); out-of-range goes to edge bins."""

    lo: float
    hi: float
    bins: int
    counts: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError("hi must exceed lo")
        if self.bins < 1:
            raise ValueError("need at least one bin")
        if not self.counts:
            self.counts = [0] * self.bins

    def add(self, value: float) -> None:
        span = self.hi - self.lo
        index = int((value - self.lo) / span * self.bins)
        index = max(0, min(self.bins - 1, index))
        self.counts[index] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def bin_edges(self) -> List[float]:
        width = (self.hi - self.lo) / self.bins
        return [self.lo + i * width for i in range(self.bins + 1)]

    def render(self, width: int = 40) -> str:
        """ASCII bar rendering."""
        peak = max(self.counts) or 1
        edges = self.bin_edges()
        lines = []
        for i, count in enumerate(self.counts):
            bar = "#" * int(round(count / peak * width))
            lines.append(f"[{edges[i]:8.2f},{edges[i+1]:8.2f}) {count:6d} {bar}")
        return "\n".join(lines)
