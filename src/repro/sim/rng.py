"""Seeded, named random streams.

Every stochastic component (adaptive route choice, fault injection,
workload generation) draws from its own named stream so that enabling one
source of randomness never perturbs another — a standard
variance-reduction / reproducibility discipline in simulation studies.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngStreams:
    """A factory of independent ``random.Random`` streams keyed by name."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            # crc32 keeps the derived seed stable across processes/platforms,
            # unlike hash() which is salted.
            derived = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def fork(self, seed_offset: int) -> "RngStreams":
        """A new family of streams for an independent replication."""
        return RngStreams(seed=self.seed + seed_offset)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
