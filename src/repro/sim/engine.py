"""Deterministic discrete-event simulation kernel.

A :class:`Simulator` owns virtual time and a priority queue of events.
Determinism matters here: two events at the same timestamp fire in the
order they were scheduled (FIFO tie-break via a monotone sequence number),
so simulation results are exactly reproducible run to run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by (time, seq) so the heap pops them deterministically.
    ``cancelled`` events stay in the heap but are skipped when popped.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    _sim: Optional["Simulator"] = field(compare=False, default=None, repr=False)
    _queued: bool = field(compare=False, default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if self.cancelled:
            return
        self.cancelled = True
        # Keep the owning simulator's live-event counter exact: only events
        # still sitting in the heap were counted as pending.
        if self._queued and self._sim is not None:
            self._sim._live -= 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (negative delays, exhausted run limits)."""


class Simulator:
    """Event queue + virtual clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello at t=1"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._live = 0

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained on push/pop/cancel. Experiments poll
        this inside hot loops, so it must not scan the heap.
        """
        return self._live

    # -- scheduling -------------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, action, label)

    def schedule_at(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self._now})")
        event = Event(time=time, seq=next(self._seq), action=action, label=label)
        event._sim = self
        event._queued = True
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def call_now(self, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at the current time (runs after the current
        event completes, before time advances past ``now``)."""
        return self.schedule(0.0, action, label)

    # -- execution ---------------------------------------------------------------

    def step(self) -> Optional[Event]:
        """Run the single next event; return it, or None if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event._queued = False
            if event.cancelled:
                # Already uncounted when cancel() ran.
                continue
            self._live -= 1
            self._now = event.time
            self._events_processed += 1
            event.action()
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the queue drains, ``until`` is reached, or the event
        budget is exhausted (which raises, as it indicates a livelock)."""
        budget = max_events
        while self._queue:
            if budget == 0:
                raise SimulationError(f"exceeded event budget of {max_events}")
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = until
                return
            self.step()
            budget -= 1
        if until is not None and until > self._now:
            self._now = until

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)._queued = False
        return self._queue[0] if self._queue else None

    def __repr__(self) -> str:
        return f"Simulator(now={self._now}, pending={self.pending})"
