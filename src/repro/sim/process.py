"""Generator-based cooperative processes on top of the event kernel.

A process is a Python generator that yields *scheduling directives*:

* ``Delay(t)`` -- resume after ``t`` virtual time units,
* ``WaitEvent(signal)`` -- resume when a :class:`Signal` fires (the fired
  value is sent back into the generator),
* another :class:`Process` -- resume when that process finishes.

This gives protocol senders a linear, readable control flow ("send request,
wait for reply, stream packets, wait for ack") while staying on the same
deterministic event queue as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

from repro.sim.engine import Simulator


@dataclass(frozen=True)
class Delay:
    """Directive: sleep for ``duration`` virtual time units."""

    duration: float


class Signal:
    """A one-to-many wakeup primitive.

    Processes ``yield WaitEvent(signal)``; other code calls
    :meth:`fire`, optionally with a value delivered to each waiter.
    Signals are level-less: only waiters registered at fire time wake.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def fire(self, value: Any = None) -> None:
        """Wake every currently-registered waiter with ``value``."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


@dataclass(frozen=True)
class WaitEvent:
    """Directive: block until ``signal`` fires."""

    signal: Signal


class Process:
    """Drives a generator over a :class:`Simulator`.

    The process starts on the first event at ``start_delay`` after creation
    and runs each resumption as a simulator event, so interleaving with
    other processes and network events is fully deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator,
        name: str = "process",
        start_delay: float = 0.0,
    ) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done_signal = Signal(f"{name}.done")
        sim.schedule(start_delay, lambda: self._advance(None), label=f"{name}.start")

    @property
    def done_signal(self) -> Signal:
        return self._done_signal

    def _advance(self, value: Any) -> None:
        if self.finished:
            return
        try:
            directive = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # surface errors via .error, re-raise
            self.error = exc
            self.finished = True
            self._done_signal.fire(None)
            raise
        self._dispatch(directive)

    def _dispatch(self, directive: Any) -> None:
        if isinstance(directive, Delay):
            self.sim.schedule(directive.duration, lambda: self._advance(None), label=f"{self.name}.delay")
        elif isinstance(directive, WaitEvent):
            directive.signal.add_waiter(lambda value: self._advance(value))
        elif isinstance(directive, Process):
            if directive.finished:
                self.sim.call_now(lambda: self._advance(directive.result))
            else:
                directive.done_signal.add_waiter(lambda _val: self._advance(directive.result))
        elif directive is None:
            # Bare ``yield``: reschedule at the current time (yield the CPU).
            self.sim.call_now(lambda: self._advance(None), label=f"{self.name}.yield")
        else:
            raise TypeError(f"process {self.name!r} yielded unsupported directive {directive!r}")

    def _finish(self, value: Any) -> None:
        self.finished = True
        self.result = value
        self._done_signal.fire(value)

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"
