"""Structured event tracing.

Network models and protocol endpoints emit :class:`TraceRecord` entries
into a :class:`Tracer`.  Tests and experiments use the trace both to assert
behaviour (e.g. "the ack was sent after the last data packet") and to render
protocol timelines like the paper's Figures 3-5 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    label: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.3f}] {self.category:12s} {self.label} {extra}".rstrip()


class Tracer:
    """Collects trace records; optionally filtered by category."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self._category_filter: Optional[Callable[[str], bool]] = None

    def set_filter(self, predicate: Optional[Callable[[str], bool]]) -> None:
        """Only record categories for which ``predicate`` returns True."""
        self._category_filter = predicate

    def emit(self, time: float, category: str, label: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._category_filter is not None and not self._category_filter(category):
            return
        self.records.append(TraceRecord(time=time, category=category, label=label, detail=detail))

    # -- queries -------------------------------------------------------------

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def labels(self, category: Optional[str] = None) -> List[str]:
        return [r.label for r in self.records if category is None or r.category == category]

    def count(self, category: str) -> int:
        return sum(1 for r in self.records if r.category == category)

    def clear(self) -> None:
        self.records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable timeline (used by examples)."""
        records = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in records)


#: A tracer that drops everything; handy default for cost-only runs.
NULL_TRACER = Tracer(enabled=False)
