"""Discrete-event simulation substrate.

Provides the event-driven kernel the network models and protocol endpoints
run on: a deterministic event queue (:mod:`repro.sim.engine`),
generator-based cooperative processes (:mod:`repro.sim.process`), seeded
per-purpose random streams (:mod:`repro.sim.rng`), structured tracing
(:mod:`repro.sim.trace`), and summary statistics (:mod:`repro.sim.stats`).
"""

from repro.sim.engine import Simulator, Event
from repro.sim.process import Process, Delay, WaitEvent, Signal
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer, TraceRecord
from repro.sim.stats import Counter, RunningStats, Histogram

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Delay",
    "WaitEvent",
    "Signal",
    "RngStreams",
    "Tracer",
    "TraceRecord",
    "Counter",
    "RunningStats",
    "Histogram",
]
