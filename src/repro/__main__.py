"""``python -m repro`` — self-verification and the live runtime CLI.

With no arguments (or ``selfcheck``): run the keystone calibration pins
in a few hundred milliseconds and print a one-screen report — is this
installation reproducing the paper?  For the full artifact regeneration
use ``python -m repro.experiments.runner``.

``python -m repro runtime demo|bench`` drives the live asyncio runtime:
the same three protocols over real transports, with measured wall-clock
feature breakdowns (see :mod:`repro.runtime`).
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    InOrderDelivery,
    quick_cr_setup,
    quick_setup,
    run_cr_indefinite_sequence,
    run_finite_sequence,
    run_indefinite_sequence,
    run_single_packet,
)

PINS = (
    ("single-packet source/dest", (20, 27)),
    ("finite 16w src/dst", (173, 224)),
    ("finite 1024w src/dst", (6221, 5516)),
    ("indefinite 16w src/dst", (216, 265)),
    ("indefinite 1024w src/dst", (13824, 16141)),
    ("CR indefinite 1024w total", (8717,)),
)


def selfcheck() -> int:
    print("repro self-check: Karamcheti & Chien (ASPLOS 1994) calibration pins\n")
    failures = 0

    def check(name, expected, actual):
        nonlocal failures
        ok = tuple(actual) == tuple(expected)
        if not ok:
            failures += 1
        print(f"  [{'ok' if ok else 'FAIL'}] {name}: {actual}"
              + ("" if ok else f" (expected {expected})"))

    sim, src, dst, _net = quick_setup()
    r = run_single_packet(sim, src, dst)
    check("single-packet source/dest", (20, 27),
          (r.src_costs.total, r.dst_costs.total))

    for words, expected in ((16, (173, 224)), (1024, (6221, 5516))):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        r = run_finite_sequence(sim, src, dst, words)
        check(f"finite {words}w src/dst", expected,
              (r.src_costs.total, r.dst_costs.total))

    for words, expected in ((16, (216, 265)), (1024, (13824, 16141))):
        sim, src, dst, _net = quick_setup()
        r = run_indefinite_sequence(sim, src, dst, words)
        check(f"indefinite {words}w src/dst", expected,
              (r.src_costs.total, r.dst_costs.total))

    sim, src, dst, _net = quick_cr_setup()
    r = run_cr_indefinite_sequence(sim, src, dst, 1024)
    check("CR indefinite 1024w total", (8717,), (r.total,))
    check("CR indefinite overhead", (0,), (r.overhead_total,))

    print()
    if failures:
        print(f"{failures} pin(s) FAILED — the reproduction is broken.")
        return 1
    print("All calibration pins reproduce the paper exactly.")
    print("Full artifacts: python -m repro.experiments.runner all")
    return 0


def main(argv=()) -> int:
    """Entry point.  ``main()`` with no arguments runs the self-check."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction self-check and live-runtime CLI.",
    )
    commands = parser.add_subparsers(dest="command")
    commands.add_parser(
        "selfcheck", help="verify the calibration pins (the default)")
    runtime = commands.add_parser(
        "runtime", help="run the live asyncio messaging runtime")

    from repro.runtime.demo import add_runtime_subparsers
    add_runtime_subparsers(runtime)

    args = parser.parse_args(list(argv))
    if args.command is None or args.command == "selfcheck":
        return selfcheck()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
