"""Workload generation: traffic patterns, message sizes, traces."""

from repro.workloads.messages import (
    FixedSize,
    UniformSize,
    BimodalSize,
    PAPER_SMALL_WORDS,
    PAPER_LARGE_WORDS,
)
from repro.workloads.patterns import (
    pairwise,
    uniform_random_pairs,
    permutation_pairs,
    hotspot_pairs,
)
from repro.workloads.traces import TraceEvent, SyntheticTrace

__all__ = [
    "FixedSize",
    "UniformSize",
    "BimodalSize",
    "PAPER_SMALL_WORDS",
    "PAPER_LARGE_WORDS",
    "pairwise",
    "uniform_random_pairs",
    "permutation_pairs",
    "hotspot_pairs",
    "TraceEvent",
    "SyntheticTrace",
]
