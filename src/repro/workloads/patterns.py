"""Communication patterns: who talks to whom.

The paper measures an isolated pair ("no other communication going on");
these generators provide that pair plus the standard multi-node patterns
used by the detailed-network experiments (uniform random, permutations,
hotspot) to show how congestion and adaptivity interact.
"""

from __future__ import annotations

import random
from typing import List, Tuple

Pair = Tuple[int, int]


def pairwise(src: int = 0, dst: int = 1) -> List[Pair]:
    """The paper's quiet two-node configuration."""
    if src == dst:
        raise ValueError("source and destination must differ")
    return [(src, dst)]


def uniform_random_pairs(n_nodes: int, count: int, rng: random.Random) -> List[Pair]:
    """``count`` (src, dst) pairs drawn uniformly, src != dst."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    pairs = []
    for _ in range(count):
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes - 1)
        if dst >= src:
            dst += 1
        pairs.append((src, dst))
    return pairs


def permutation_pairs(n_nodes: int, rng: random.Random) -> List[Pair]:
    """A random permutation: every node sends to a distinct partner."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    targets = list(range(n_nodes))
    while True:
        rng.shuffle(targets)
        if all(i != t for i, t in enumerate(targets)):
            break
    return list(enumerate(targets))


def hotspot_pairs(
    n_nodes: int, count: int, rng: random.Random, hotspot: int = 0, heat: float = 0.5
) -> List[Pair]:
    """Pairs where a ``heat`` fraction of traffic targets one node."""
    if not 0.0 <= heat <= 1.0:
        raise ValueError("heat must be a probability")
    if not 0 <= hotspot < n_nodes:
        raise ValueError("hotspot out of range")
    pairs = []
    for _ in range(count):
        src = rng.randrange(n_nodes)
        if rng.random() < heat and src != hotspot:
            dst = hotspot
        else:
            dst = rng.randrange(n_nodes - 1)
            if dst >= src:
                dst += 1
        pairs.append((src, dst))
    return pairs
