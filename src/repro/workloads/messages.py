"""Message-size distributions.

The paper measures two sizes — 16 words ("small") and 1024 words
("large") — chosen to expose the fixed-versus-per-packet cost structure.
These generators feed the sweeps and the multi-node workload experiments.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

#: The paper's measured message sizes (32-bit words).
PAPER_SMALL_WORDS = 16
PAPER_LARGE_WORDS = 1024


class SizeDistribution:
    """Base class: yields message sizes in words."""

    def sample(self, rng: random.Random) -> int:
        raise NotImplementedError

    def stream(self, rng: random.Random, count: int) -> List[int]:
        return [self.sample(rng) for _ in range(count)]


class FixedSize(SizeDistribution):
    """Every message the same size (the paper's configuration)."""

    def __init__(self, words: int) -> None:
        if words < 1:
            raise ValueError("message size must be positive")
        self.words = words

    def sample(self, rng: random.Random) -> int:
        return self.words


class UniformSize(SizeDistribution):
    """Uniform over [lo, hi] words."""

    def __init__(self, lo: int, hi: int) -> None:
        if not 1 <= lo <= hi:
            raise ValueError("need 1 <= lo <= hi")
        self.lo = lo
        self.hi = hi

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)


class BimodalSize(SizeDistribution):
    """Small-or-large mix — the classic messaging workload shape (mostly
    short control messages, occasional bulk transfers)."""

    def __init__(
        self,
        small: int = PAPER_SMALL_WORDS,
        large: int = PAPER_LARGE_WORDS,
        large_fraction: float = 0.1,
    ) -> None:
        if not 0.0 <= large_fraction <= 1.0:
            raise ValueError("large_fraction must be a probability")
        self.small = small
        self.large = large
        self.large_fraction = large_fraction

    def sample(self, rng: random.Random) -> int:
        return self.large if rng.random() < self.large_fraction else self.small
