"""Synthetic communication traces.

A trace is a timestamped list of (src, dst, words) send events.  Traces
stand in for the application-driven communication the paper's CM-5 runs
would have produced; they drive the multi-node experiments and can be
replayed deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.workloads.messages import SizeDistribution, FixedSize
from repro.workloads.patterns import uniform_random_pairs


@dataclass(frozen=True)
class TraceEvent:
    """One send: at ``time``, ``src`` transmits ``words`` to ``dst``."""

    time: float
    src: int
    dst: int
    words: int


class SyntheticTrace:
    """A deterministic synthetic trace."""

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events: List[TraceEvent] = sorted(events, key=lambda e: e.time)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def total_words(self) -> int:
        return sum(e.words for e in self.events)

    @property
    def duration(self) -> float:
        return self.events[-1].time if self.events else 0.0

    @classmethod
    def poisson(
        cls,
        n_nodes: int,
        count: int,
        rate: float,
        rng: random.Random,
        sizes: SizeDistribution = FixedSize(16),
    ) -> "SyntheticTrace":
        """Poisson arrivals at ``rate`` events per time unit, uniform pairs."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        pairs = uniform_random_pairs(n_nodes, count, rng)
        time = 0.0
        events = []
        for src, dst in pairs:
            time += rng.expovariate(rate)
            events.append(TraceEvent(time=time, src=src, dst=dst, words=sizes.sample(rng)))
        return cls(events)

    @classmethod
    def bursty(
        cls,
        n_nodes: int,
        bursts: int,
        burst_len: int,
        gap: float,
        rng: random.Random,
        sizes: SizeDistribution = FixedSize(16),
    ) -> "SyntheticTrace":
        """Back-to-back bursts separated by idle gaps."""
        events = []
        time = 0.0
        for _ in range(bursts):
            pairs = uniform_random_pairs(n_nodes, burst_len, rng)
            for src, dst in pairs:
                events.append(
                    TraceEvent(time=time, src=src, dst=dst, words=sizes.sample(rng))
                )
            time += gap
        return cls(events)
