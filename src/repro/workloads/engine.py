"""Multi-node workload engine.

The paper measures an isolated pair; this engine runs whole *workloads* —
timestamped traces of bulk transfers between many nodes — over a shared
network, serializing transfers per source (one outstanding transfer per
sender, as the CMAM xfer interface implies) and aggregating the
instruction-cost and latency picture across the machine.

Used by the contention experiments and the ``cluster_workload`` example to
show that the paper's per-transfer cost structure is additive: a node's
total messaging bill is the sum of its transfers' costs, independent of
what the rest of the machine is doing (software cost is a local quantity —
only *latency* feels contention).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.am.costs import CmamCosts
from repro.am.cmam import AMDispatcher
from repro.am.segments import SegmentTable
from repro.arch.counters import CostMatrix
from repro.node import Node
from repro.protocols.base import packet_payload_sizes
from repro.protocols.finite_sequence import (
    FiniteSequenceReceiver,
    FiniteSequenceSender,
)
from repro.protocols.indefinite_sequence import StreamReceiver, StreamSender
from repro.sim.engine import Simulator
from repro.sim.stats import RunningStats
from repro.workloads.traces import SyntheticTrace, TraceEvent


@dataclass
class TransferRecord:
    """One workload transfer's lifecycle."""

    event: TraceEvent
    submitted_at: float
    started_at: Optional[float] = None
    completed_at: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def done(self) -> bool:
        return self.completed_at is not None


@dataclass
class StreamSession:
    """One long-lived stream flow in the workload."""

    src: int
    dst: int
    total_words: int
    started_at: float
    delivered_words: int = 0
    completed_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.completed_at is not None


@dataclass
class WorkloadReport:
    """Aggregate outcome of a workload run."""

    transfers: List[TransferRecord]
    node_costs: Dict[int, CostMatrix]
    latency: RunningStats
    duration: float
    streams: List[StreamSession] = None

    @property
    def completed(self) -> int:
        return sum(1 for t in self.transfers if t.done)

    @property
    def streams_completed(self) -> int:
        return sum(1 for s in (self.streams or []) if s.done)

    @property
    def total_instructions(self) -> int:
        return sum(matrix.total for matrix in self.node_costs.values())

    @property
    def overhead_instructions(self) -> int:
        return sum(matrix.overhead_total for matrix in self.node_costs.values())

    @property
    def overhead_fraction(self) -> float:
        total = self.total_instructions
        return self.overhead_instructions / total if total else 0.0

    @property
    def all_done(self) -> bool:
        return self.completed == len(self.transfers) and (
            self.streams_completed == len(self.streams or [])
        )


class WorkloadEngine:
    """Drives a trace of finite-sequence transfers over N nodes."""

    def __init__(
        self,
        sim: Simulator,
        network,
        n_nodes: int,
        costs: Optional[CmamCosts] = None,
        segments_per_node: int = 16,
        segment_words: int = 1 << 16,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("need at least two nodes")
        self.sim = sim
        self.network = network
        self.costs = costs or CmamCosts()
        self.nodes: Dict[int, Node] = {}
        self.dispatchers: Dict[int, AMDispatcher] = {}
        self.receivers: Dict[int, FiniteSequenceReceiver] = {}
        for node_id in range(n_nodes):
            node = Node(node_id, sim, network, packet_size=self.costs.n)
            self.nodes[node_id] = node
            dispatcher = AMDispatcher(node, costs=self.costs)
            self.dispatchers[node_id] = dispatcher
            self.receivers[node_id] = FiniteSequenceReceiver(
                node, dispatcher, costs=self.costs,
                segments=SegmentTable(
                    capacity_segments=segments_per_node,
                    capacity_words=segment_words,
                ),
            )
        self._queues: Dict[int, Deque[TransferRecord]] = {
            node_id: deque() for node_id in range(n_nodes)
        }
        self._busy: Dict[int, bool] = {node_id: False for node_id in range(n_nodes)}
        self._records: List[TransferRecord] = []
        self._streams: List[StreamSession] = []
        self._stream_sources: set = set()
        self._stream_sinks: set = set()
        self._baselines = {
            node_id: node.processor.snapshot() for node_id, node in self.nodes.items()
        }

    # -- submission -----------------------------------------------------------------

    def submit(self, trace: SyntheticTrace) -> None:
        """Schedule every trace event for its timestamp."""
        for event in trace:
            if event.src not in self.nodes or event.dst not in self.nodes:
                raise ValueError(f"trace event references unknown node: {event}")
            if event.src == event.dst:
                raise ValueError("self-transfers are not meaningful")
            record = TransferRecord(event=event, submitted_at=event.time)
            self._records.append(record)
            self.sim.schedule_at(
                event.time, lambda r=record: self._enqueue(r), label="workload.submit"
            )

    def _enqueue(self, record: TransferRecord) -> None:
        queue = self._queues[record.event.src]
        queue.append(record)
        if not self._busy[record.event.src]:
            self._start_next(record.event.src)

    def _start_next(self, src_id: int) -> None:
        queue = self._queues[src_id]
        if not queue:
            self._busy[src_id] = False
            return
        self._busy[src_id] = True
        record = queue.popleft()
        record.started_at = self.sim.now
        node = self.nodes[src_id]
        words = record.event.words
        message = [(src_id * 131 + i) & 0xFFFFFFFF for i in range(words)]
        node.memory.write_block(0, message)
        FiniteSequenceSender(
            node,
            self.dispatchers[src_id],
            record.event.dst,
            message_addr=0,
            message_words=words,
            costs=self.costs,
            on_complete=lambda _sender, r=record, s=src_id: self._finish(r, s),
        ).start()

    def _finish(self, record: TransferRecord, src_id: int) -> None:
        record.completed_at = self.sim.now
        # Start the next queued transfer from this source.
        self.sim.call_now(lambda: self._start_next(src_id), label="workload.next")

    # -- stream sessions --------------------------------------------------------------

    def submit_stream(
        self,
        src: int,
        dst: int,
        total_words: int,
        start_time: float = 0.0,
        record_gap: float = 2.0,
    ) -> StreamSession:
        """Open a stream channel at ``start_time`` and push ``total_words``
        through it, one packet every ``record_gap`` time units.

        One outgoing and one incoming stream per node: the stream protocol
        owns a node's STREAM_DATA/STREAM_ACK bindings.
        """
        if src == dst or src not in self.nodes or dst not in self.nodes:
            raise ValueError(f"invalid stream endpoints {src}->{dst}")
        if src in self._stream_sources:
            raise ValueError(f"node {src} already sources a stream")
        if dst in self._stream_sinks:
            raise ValueError(f"node {dst} already sinks a stream")
        self._stream_sources.add(src)
        self._stream_sinks.add(dst)
        session = StreamSession(
            src=src, dst=dst, total_words=total_words, started_at=start_time
        )
        self._streams.append(session)
        sizes = packet_payload_sizes(total_words, self.costs.n)

        def start() -> None:
            sender = StreamSender(
                self.nodes[src], self.dispatchers[src], dst, costs=self.costs
            )

            def on_deliver(_seq, payload) -> None:
                session.delivered_words += len(payload)
                if session.delivered_words >= total_words:
                    session.completed_at = self.sim.now
                    sender.close()

            StreamReceiver(
                self.nodes[dst], self.dispatchers[dst], costs=self.costs,
                deliver=on_deliver, expected_total=len(sizes),
            )
            cursor = 0
            for index, take in enumerate(sizes):
                payload = tuple(
                    (src * 977 + cursor + i) & 0xFFFFFFFF for i in range(take)
                )
                self.sim.schedule(
                    index * record_gap,
                    lambda p=payload: sender.send(p),
                    label="workload.stream",
                )
                cursor += take

        self.sim.schedule_at(start_time, start, label="workload.stream_open")
        return session

    # -- execution --------------------------------------------------------------------

    def run(self) -> WorkloadReport:
        self.sim.run()
        latency = RunningStats()
        for record in self._records:
            if record.latency is not None:
                latency.add(record.latency)
        node_costs = {
            node_id: node.processor.delta(self._baselines[node_id])
            for node_id, node in self.nodes.items()
        }
        return WorkloadReport(
            transfers=list(self._records),
            node_costs=node_costs,
            latency=latency,
            duration=self.sim.now,
            streams=list(self._streams),
        )
