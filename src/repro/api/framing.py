"""Message framing over word-stream channels.

A :class:`~repro.api.channel.Channel` delivers an ordered word stream; most
applications want discrete *messages*.  :class:`FramedChannel` adds the
classic length-prefix framing: each message travels as one header word
(its length) followed by its payload words, and the receiving side
reassembles exact message boundaries from the stream — valid regardless of
how the stream was packetized, because the channel guarantees order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.api.channel import Channel

#: Framing limit: a length word must fit in 32 bits.
MAX_MESSAGE_WORDS = (1 << 32) - 1


class FrameAssembler:
    """Incremental length-prefix decoder over an ordered word stream."""

    def __init__(self) -> None:
        self.messages: List[List[int]] = []
        self._pending_length: Optional[int] = None
        self._partial: List[int] = []
        self._callback: Optional[Callable[[List[int]], None]] = None

    def on_message(self, callback: Callable[[List[int]], None]) -> None:
        self._callback = callback

    def feed(self, words: Sequence[int]) -> None:
        """Consume stream words; emit completed messages."""
        for word in words:
            if self._pending_length is None:
                self._pending_length = word
                if word == 0:
                    self._emit([])
                continue
            self._partial.append(word)
            if len(self._partial) == self._pending_length:
                self._emit(self._partial)

    def _emit(self, message: List[int]) -> None:
        complete = list(message)
        self.messages.append(complete)
        self._pending_length = None
        self._partial = []
        if self._callback is not None:
            self._callback(complete)

    @property
    def in_progress(self) -> bool:
        """A message is partially received."""
        return self._pending_length is not None and self._pending_length > 0


class FramedChannel:
    """Discrete messages over a word-stream channel."""

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.assembler = FrameAssembler()
        channel.receive_buffer.on_record(
            lambda payload: self.assembler.feed(payload)
        )
        self.messages_sent = 0

    def send_message(self, words: Sequence[int]) -> int:
        """Send one framed message; returns packets used."""
        words = list(words)
        if len(words) > MAX_MESSAGE_WORDS:
            raise ValueError("message too long to frame")
        packets = self.channel.send([len(words)] + words)
        self.messages_sent += 1
        return packets

    @property
    def received_messages(self) -> List[List[int]]:
        return self.assembler.messages

    def on_message(self, callback: Callable[[List[int]], None]) -> None:
        self.assembler.on_message(callback)

    def close(self) -> None:
        self.channel.close()
