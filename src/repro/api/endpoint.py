"""Endpoints: a node's communication context."""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.am.cmam import AMDispatcher, cmam_4
from repro.am.costs import CmamCosts
from repro.node import Node


class Endpoint:
    """Wraps a node with a dispatcher and a friendly send/handler surface.

    One endpoint per node; creating a second one would fight over the
    node's NI notification hook, so the constructor enforces uniqueness.
    """

    def __init__(self, node: Node, costs: Optional[CmamCosts] = None) -> None:
        if getattr(node, "_api_endpoint", None) is not None:
            raise ValueError(f"node {node.node_id} already has an endpoint")
        node._api_endpoint = self
        self.node = node
        self.costs = costs or CmamCosts(n=node.ni.packet_size)
        self.dispatcher = AMDispatcher(node, costs=self.costs)

    # -- active messages ------------------------------------------------------

    def on(self, handler_name: str) -> Callable[[Callable], Callable]:
        """Decorator: register an active-message handler."""

        def register(fn: Callable) -> Callable:
            self.node.register_handler(handler_name, fn)
            return fn

        return register

    def send_am(self, dst: "Endpoint", handler: str, words: Tuple[int, ...]) -> None:
        """Fire a four-word active message at a remote handler."""
        cmam_4(self.node, dst.node.node_id, handler, words, costs=self.costs)

    # -- identity ----------------------------------------------------------------

    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def network(self):
        return self.node.network

    def __repr__(self) -> str:
        return f"Endpoint(node={self.node.node_id})"
