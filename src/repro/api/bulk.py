"""One-shot memory-to-memory bulk transfers.

``bulk_put`` moves a block of words from source memory to destination
memory, picking the finite-sequence machinery the network's services call
for: the six-step CMAM handshake protocol on a CM-5-class network, or the
collapsed Section 4 protocol on a CR-class network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.am.segments import SegmentTable
from repro.api.endpoint import Endpoint
from repro.protocols.cr_protocols import CRFiniteReceiver, CRFiniteSender
from repro.protocols.finite_sequence import (
    FiniteSequenceReceiver,
    FiniteSequenceSender,
)


@dataclass
class BulkResult:
    """Outcome of a bulk transfer."""

    completed: bool
    words: int
    dest_addr: int
    mode: str
    packets: int
    data: List[int]


class _BulkPlumbing:
    """Per-destination reusable reception state (bound once per node)."""

    def __init__(self, rx: Endpoint) -> None:
        self.completions: List = []
        if getattr(rx.network, "provides_in_order", False) and getattr(
            rx.network, "provides_reliability", False
        ):
            self.mode = "cr"
            self.receiver = CRFiniteReceiver(
                rx.node, rx.dispatcher, costs=rx.costs,
                on_complete=lambda _src, addr, words: self.completions.append(
                    (addr, words)
                ),
            )
        else:
            self.mode = "cmam"
            self.segments = SegmentTable()
            self.receiver = FiniteSequenceReceiver(
                rx.node, rx.dispatcher, costs=rx.costs, segments=self.segments,
                on_complete=lambda segment: self.completions.append(
                    (segment.base_addr, segment.size_words)
                ),
            )


def _plumbing(rx: Endpoint) -> _BulkPlumbing:
    existing = getattr(rx.node, "_bulk_plumbing", None)
    if existing is None:
        existing = _BulkPlumbing(rx)
        rx.node._bulk_plumbing = existing
    return existing


def bulk_put(
    tx: Endpoint,
    rx: Endpoint,
    data: Sequence[int],
    src_addr: int = 0,
    run_to_completion: bool = True,
    rto: Optional[float] = None,
) -> BulkResult:
    """Transfer ``data`` from ``tx``'s memory to ``rx``'s memory.

    The data is first written at ``src_addr`` in the source's memory (as
    an application would have produced it), then moved by the appropriate
    finite-sequence protocol.  With ``run_to_completion`` the simulator is
    driven until quiescent and the destination copy is returned.
    """
    if tx.network is not rx.network:
        raise ValueError("endpoints live on different networks")
    data = list(data)
    tx.node.memory.write_block(src_addr, data)
    plumbing = _plumbing(rx)
    already_done = len(plumbing.completions)

    if plumbing.mode == "cr":
        sender = CRFiniteSender(
            tx.node, rx.node_id, src_addr, len(data), costs=tx.costs
        )
        sender.start()
        packets = sender.packets
    else:
        sender = FiniteSequenceSender(
            tx.node, tx.dispatcher, rx.node_id, src_addr, len(data),
            costs=tx.costs, rto=rto,
        )
        sender.start()
        packets = sender.packets

    if not run_to_completion:
        return BulkResult(False, len(data), -1, plumbing.mode, packets, [])

    tx.node.sim.run()
    new = plumbing.completions[already_done:]
    if not new:
        return BulkResult(False, len(data), -1, plumbing.mode, packets, [])
    dest_addr, words = new[-1]
    received = rx.node.memory.read_block(dest_addr, words)
    return BulkResult(
        completed=words == len(data),
        words=words,
        dest_addr=dest_addr,
        mode=plumbing.mode,
        packets=packets,
        data=received,
    )
