"""User-facing communication API.

A small, sockets-flavoured façade over the protocol layer — what a
downstream user of this library actually programs against:

* :class:`~repro.api.endpoint.Endpoint` — a node's communication context
  (dispatcher + handler registration + active-message send).
* :class:`~repro.api.channel.Channel` — an ordered, reliable,
  flow-controlled word stream between two endpoints.
* :func:`~repro.api.bulk.bulk_put` — a one-shot memory-to-memory transfer.

The API inspects the network's service flags (``provides_in_order``,
``provides_flow_control``, ``provides_reliability``) and instantiates the
cheap Section 4 protocols when the hardware provides the services, or the
full CMAM machinery when it does not — the paper's thesis, operating as a
dispatch rule.
"""

from repro.api.endpoint import Endpoint
from repro.api.channel import Channel, open_channel
from repro.api.bulk import BulkResult, bulk_put
from repro.api.framing import FramedChannel, FrameAssembler

__all__ = [
    "Endpoint",
    "Channel",
    "open_channel",
    "BulkResult",
    "bulk_put",
    "FramedChannel",
    "FrameAssembler",
]
