"""Ordered, reliable, flow-controlled channels.

``open_channel(tx_endpoint, rx_endpoint)`` gives the sending side a
:class:`Channel` whose ``send(words)`` accepts arbitrary-length word
sequences and whose receiving side accumulates them in order.  Under the
hood the channel picks its machinery from the network's service flags:

* network provides ordering + reliability (CR): the free Section 4 stream
  (:class:`~repro.protocols.cr_protocols.CRStreamSender`);
* otherwise, the paper's full indefinite-sequence protocol — or, when a
  ``window`` is requested, the credit-windowed variant that also bounds
  receiver memory.

One channel per (source, destination) direction: the stream protocols own
the node's STREAM_DATA/STREAM_ACK bindings.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.api.endpoint import Endpoint
from repro.protocols.acks import AckPolicy
from repro.protocols.base import packet_payload_sizes
from repro.protocols.cr_protocols import CRStreamReceiver, CRStreamSender
from repro.protocols.indefinite_sequence import StreamReceiver, StreamSender
from repro.protocols.windowed import WindowedStreamReceiver, WindowedStreamSender


class ChannelReceiveBuffer:
    """Accumulates in-order payloads on the receiving side."""

    def __init__(self) -> None:
        self._words: List[int] = []
        self.records: List[Tuple[int, ...]] = []
        self._callback: Optional[Callable[[Tuple[int, ...]], None]] = None

    def on_record(self, callback: Callable[[Tuple[int, ...]], None]) -> None:
        self._callback = callback

    def _deliver(self, _seq: int, payload: Tuple[int, ...]) -> None:
        self.records.append(payload)
        self._words.extend(payload)
        if self._callback is not None:
            self._callback(payload)

    def read(self) -> List[int]:
        """All words received so far, in transmission order."""
        return list(self._words)

    def __len__(self) -> int:
        return len(self._words)


class Channel:
    """The sending half of a unidirectional channel."""

    def __init__(self, sender, receive_buffer: ChannelReceiveBuffer,
                 packet_size: int, mode: str) -> None:
        self._sender = sender
        self.receive_buffer = receive_buffer
        self.packet_size = packet_size
        self.mode = mode
        self.words_sent = 0

    def send(self, words: Sequence[int]) -> int:
        """Send an arbitrary-length word sequence; returns packets used."""
        words = list(words)
        sizes = packet_payload_sizes(len(words), self.packet_size)
        cursor = 0
        for take in sizes:
            self._sender.send(tuple(words[cursor:cursor + take]))
            cursor += take
        self.words_sent += len(words)
        return len(sizes)

    def close(self) -> None:
        close = getattr(self._sender, "close", None)
        if close is not None:
            close()

    @property
    def outstanding(self) -> int:
        """Unacknowledged packets held in the source buffer (0 on CR)."""
        return getattr(self._sender, "outstanding", 0)

    def __repr__(self) -> str:
        return f"Channel(mode={self.mode}, sent={self.words_sent}w)"


def open_channel(
    tx: Endpoint,
    rx: Endpoint,
    window: Optional[int] = None,
    ack_policy: Optional[AckPolicy] = None,
    consume_interval: float = 5.0,
    expected_total: Optional[int] = None,
) -> Channel:
    """Open a unidirectional ordered channel from ``tx`` to ``rx``.

    ``window`` requests credit-based receiver flow control (ignored on CR
    networks, where the hardware provides it).  ``ack_policy`` selects
    per-packet or group acknowledgements for the CMAM stream.
    """
    if tx.network is not rx.network:
        raise ValueError("endpoints live on different networks")
    network = tx.network
    buffer = ChannelReceiveBuffer()
    hardware_services = (
        getattr(network, "provides_in_order", False)
        and getattr(network, "provides_reliability", False)
    )
    if hardware_services:
        CRStreamReceiver(rx.node, rx.dispatcher, costs=rx.costs,
                         deliver=buffer._deliver)
        sender = CRStreamSender(tx.node, rx.node_id, costs=tx.costs)
        mode = "cr"
    elif window is not None:
        WindowedStreamReceiver(
            rx.node, rx.dispatcher, window=window, costs=rx.costs,
            consume_interval=consume_interval, deliver=buffer._deliver,
        )
        sender = WindowedStreamSender(
            tx.node, tx.dispatcher, rx.node_id, window=window, costs=tx.costs
        )
        mode = "windowed"
    else:
        StreamReceiver(
            rx.node, rx.dispatcher, costs=rx.costs, ack_policy=ack_policy,
            deliver=buffer._deliver, expected_total=expected_total,
        )
        sender = StreamSender(tx.node, tx.dispatcher, rx.node_id, costs=tx.costs)
        mode = "cmam"
    return Channel(sender, buffer, packet_size=tx.costs.n, mode=mode)
