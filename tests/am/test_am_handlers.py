"""Unit tests for handler utilities."""

from repro.am.handlers import AccumulateHandler, CollectingHandler, handler_on
from repro.network.cm5 import CM5Network
from repro.node import Node
from repro.sim.engine import Simulator


def make_node():
    sim = Simulator()
    return Node(0, sim, CM5Network(sim))


def test_handler_on_decorator():
    node = make_node()

    @handler_on(node, "greet")
    def greet(node, *words):
        return words

    assert node.handler("greet") is greet


def test_collecting_handler():
    node = make_node()
    collector = CollectingHandler()
    collector(node, 1, 2)
    collector(node, 3)
    assert collector.count == 2
    assert collector.invocations == [(1, 2), (3,)]
    assert collector.flat_words() == [1, 2, 3]


def test_accumulate_handler():
    node = make_node()
    acc = AccumulateHandler()
    acc(node, 1, 2, 3)
    acc(node, 10)
    assert acc.total == 16
    assert acc.count == 2
