"""Tests for reception disciplines (polling vs interrupts, footnote 2)."""

import pytest

from repro.am.cmam import AMDispatcher, cmam_4
from repro.am.handlers import CollectingHandler
from repro.am.reception import (
    EMPTY_POLL_COST,
    InterruptReception,
    PollingReception,
    SPARC_INTERRUPT_COST,
    reception_crossover,
)
from repro.arch.isa import mix
from repro.network.cm5 import CM5Network
from repro.network.delivery import InOrderDelivery
from repro.node import Node
from repro.sim.engine import Simulator


def pair_with_reception(reception_factory):
    sim = Simulator()
    net = CM5Network(sim, delivery_factory=InOrderDelivery)
    src, dst = Node(0, sim, net), Node(1, sim, net)
    dispatcher = AMDispatcher(dst)
    reception = reception_factory(dst)
    dispatcher.set_reception(reception)
    collector = CollectingHandler()
    dst.register_handler("h", collector)
    return sim, src, dst, reception, collector


def send_n(sim, src, n):
    for i in range(n):
        cmam_4(src, 1, "h", (i,))
    sim.run()


class TestPollingReception:
    def test_favourable_path_charges_nothing(self):
        sim, src, dst, reception, collector = pair_with_reception(
            lambda node: PollingReception(node, polls_per_packet=1.0)
        )
        before = dst.processor.costs.total
        send_n(sim, src, 4)
        assert collector.count == 4
        assert reception.stats.empty_polls == 0
        # Only the calibrated reception paths were charged (27 each).
        assert dst.processor.costs.total - before == 4 * 27

    def test_duty_cycle_charges_empty_polls(self):
        sim, src, dst, reception, collector = pair_with_reception(
            lambda node: PollingReception(node, polls_per_packet=3.0)
        )
        send_n(sim, src, 10)
        assert reception.stats.empty_polls == 20  # 2 extra per packet
        assert reception.stats.discipline_cost == EMPTY_POLL_COST * 20

    def test_fractional_duty_accumulates_exactly(self):
        sim, src, dst, reception, _c = pair_with_reception(
            lambda node: PollingReception(node, polls_per_packet=1.5)
        )
        send_n(sim, src, 10)
        assert reception.stats.empty_polls == 5

    def test_sub_unity_duty_rejected(self):
        sim = Simulator()
        net = CM5Network(sim)
        node = Node(0, sim, net)
        with pytest.raises(ValueError):
            PollingReception(node, polls_per_packet=0.5)


class TestInterruptReception:
    def test_per_packet_interrupt_cost(self):
        sim, src, dst, reception, collector = pair_with_reception(
            InterruptReception
        )
        send_n(sim, src, 6)
        assert collector.count == 6
        assert reception.stats.interrupts == 6
        assert reception.stats.discipline_cost == SPARC_INTERRUPT_COST * 6

    def test_custom_interrupt_cost(self):
        sim, src, dst, reception, _c = pair_with_reception(
            lambda node: InterruptReception(node, interrupt_cost=mix(reg=10))
        )
        send_n(sim, src, 2)
        assert reception.stats.discipline_cost == mix(reg=20)


class TestCrossover:
    def test_analytic_crossover(self):
        # 1 + 101/4 = 26.25 with the default costs.
        assert reception_crossover() == pytest.approx(26.25)

    def test_crossover_matches_measurement(self):
        """Measured totals agree with the analytic crossover: polling is
        cheaper below it, dearer above it."""
        from repro.analysis.reception import _run_stream

        crossover = reception_crossover()
        interrupt = _run_stream("interrupt", 0.0, 256)
        below = _run_stream("polling", crossover - 10, 256)
        above = _run_stream("polling", crossover + 10, 256)
        assert below.total_instructions < interrupt.total_instructions
        assert above.total_instructions > interrupt.total_instructions


class TestReceptionStudy:
    def test_study_shape(self):
        from repro.analysis.reception import reception_study

        points = reception_study(64, duty_cycles=(1.0, 5.0))
        assert [p.discipline for p in points] == ["interrupt", "polling", "polling"]
        polling = [p for p in points if p.discipline == "polling"]
        assert polling[0].total_instructions < polling[1].total_instructions

    def test_unknown_discipline(self):
        from repro.analysis.reception import _run_stream

        with pytest.raises(KeyError):
            _run_stream("psychic", 1.0, 16)
