"""Unit tests for the CMAM primitives and dispatcher."""

import pytest

from repro.am.cmam import AMDispatcher, cmam_4, cmam_receive_am, recv_ctrl, send_ctrl
from repro.am.handlers import CollectingHandler
from repro.arch.attribution import Feature
from repro.arch.isa import mix
from repro.network.cm5 import CM5Network
from repro.network.delivery import InOrderDelivery
from repro.network.packet import PacketType
from repro.node import Node
from repro.sim.engine import Simulator


@pytest.fixture
def pair():
    sim = Simulator()
    net = CM5Network(sim, delivery_factory=InOrderDelivery)
    return sim, Node(0, sim, net), Node(1, sim, net)


class TestCmam4:
    def test_source_cost_is_table1(self, pair):
        _sim, src, _dst = pair
        cmam_4(src, 1, "h", (1, 2, 3, 4))
        assert src.processor.costs.get(Feature.BASE) == mix(reg=15, dev=5)

    def test_payload_padded_to_four_words(self, pair):
        sim, src, dst = pair
        collector = CollectingHandler()
        dst.register_handler("h", collector)
        AMDispatcher(dst)
        cmam_4(src, 1, "h", (7,))
        sim.run()
        assert collector.invocations == [(7, 0, 0, 0)]

    def test_oversized_payload_rejected(self, pair):
        _sim, src, _dst = pair
        with pytest.raises(ValueError):
            cmam_4(src, 1, "h", (1, 2, 3, 4, 5))

    def test_feature_override(self, pair):
        _sim, src, _dst = pair
        cmam_4(src, 1, "h", (1,), feature=Feature.BUFFER_MGMT)
        assert src.processor.costs.get(Feature.BUFFER_MGMT).total == 20


class TestReceivePath:
    def test_destination_cost_is_table1(self, pair):
        sim, src, dst = pair
        dst.register_handler("h", CollectingHandler())
        cmam_4(src, 1, "h", (1, 2, 3, 4))
        sim.run()
        cmam_receive_am(dst)
        assert dst.processor.costs.get(Feature.BASE) == mix(reg=22, dev=5)

    def test_handler_work_charged_to_user(self, pair):
        sim, src, dst = pair

        def heavy_handler(node, *words):
            node.processor.reg_ops(100)

        dst.register_handler("h", heavy_handler)
        cmam_4(src, 1, "h", (1,))
        sim.run()
        cmam_receive_am(dst)
        assert dst.processor.costs.get(Feature.USER) == mix(reg=100)
        assert dst.processor.costs.get(Feature.BASE).total == 27

    def test_invoke_handler_false_skips_user_code(self, pair):
        sim, src, dst = pair
        collector = CollectingHandler()
        dst.register_handler("h", collector)
        cmam_4(src, 1, "h", (1,))
        sim.run()
        name, payload = cmam_receive_am(dst, invoke_handler=False)
        assert name == "h"
        assert collector.count == 0


class TestControlPackets:
    def test_ctrl_roundtrip_costs(self, pair):
        sim, src, dst = pair
        send_ctrl(src, 1, PacketType.XFER_REQUEST, (16, 4), Feature.BUFFER_MGMT)
        sim.run()
        envelope, payload = recv_ctrl(dst, Feature.BUFFER_MGMT)
        assert payload == (16, 4, 0, 0)
        assert src.processor.costs.get(Feature.BUFFER_MGMT) == mix(reg=14, mem=1, dev=5)
        assert dst.processor.costs.get(Feature.BUFFER_MGMT) == mix(reg=22, dev=5)

    def test_ctrl_metadata_travels(self, pair):
        sim, src, dst = pair
        send_ctrl(
            src, 1, PacketType.XFER_REQUEST, (1,), Feature.BUFFER_MGMT,
            seq=9, segment=2, size_hint=64,
        )
        sim.run()
        envelope, _payload = recv_ctrl(dst, Feature.BUFFER_MGMT)
        assert (envelope.seq, envelope.segment, envelope.size_hint) == (9, 2, 64)


class TestDispatcher:
    def test_routes_by_packet_type(self, pair):
        sim, src, dst = pair
        seen = []
        dispatcher = AMDispatcher(dst)

        def on_ack():
            recv_ctrl(dst, Feature.FAULT_TOLERANCE)
            seen.append("ack")

        dispatcher.bind(PacketType.STREAM_ACK, on_ack)
        dst.register_handler("h", lambda node, *w: seen.append("am"))
        send_ctrl(src, 1, PacketType.STREAM_ACK, (0,), Feature.FAULT_TOLERANCE)
        cmam_4(src, 1, "h", (1,))
        sim.run()
        assert seen == ["ack", "am"]

    def test_unbound_type_raises(self, pair):
        sim, src, dst = pair
        AMDispatcher(dst)
        send_ctrl(src, 1, PacketType.XFER_DATA, (), Feature.BASE)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_nonconsuming_reception_detected(self, pair):
        sim, src, dst = pair
        dispatcher = AMDispatcher(dst)
        dispatcher.bind(PacketType.STREAM_ACK, lambda: None)  # consumes nothing
        send_ctrl(src, 1, PacketType.STREAM_ACK, (0,), Feature.FAULT_TOLERANCE)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_empty_poll_cost(self, pair):
        _sim, _src, dst = pair
        dispatcher = AMDispatcher(dst)
        dispatcher.charge_empty_poll()
        assert dst.processor.costs.get(Feature.BASE) == mix(reg=3, dev=1)

    def test_unbind(self, pair):
        sim, src, dst = pair
        dispatcher = AMDispatcher(dst)
        dispatcher.bind(PacketType.STREAM_ACK, lambda: dst.ni.discard_head())
        dispatcher.unbind(PacketType.STREAM_ACK)
        send_ctrl(src, 1, PacketType.STREAM_ACK, (0,), Feature.FAULT_TOLERANCE)
        with pytest.raises(RuntimeError):
            sim.run()
