"""Unit tests for communication segments."""

import pytest

from repro.am.segments import SegmentExhausted, SegmentTable


class TestAllocation:
    def test_allocate_assigns_distinct_ids_and_addresses(self):
        table = SegmentTable()
        a = table.allocate(64, 16)
        b = table.allocate(32, 8)
        assert a.segment_id != b.segment_id
        assert b.base_addr >= a.base_addr + 64

    def test_segment_limit(self):
        table = SegmentTable(capacity_segments=2)
        table.allocate(8, 2)
        table.allocate(8, 2)
        with pytest.raises(SegmentExhausted):
            table.allocate(8, 2)
        assert table.alloc_failures == 1

    def test_word_limit(self):
        table = SegmentTable(capacity_words=100)
        table.allocate(80, 20)
        with pytest.raises(SegmentExhausted):
            table.allocate(40, 10)

    def test_try_allocate_returns_none(self):
        table = SegmentTable(capacity_segments=1)
        assert table.try_allocate(8, 2) is not None
        assert table.try_allocate(8, 2) is None

    def test_free_releases_capacity(self):
        table = SegmentTable(capacity_segments=1)
        seg = table.allocate(8, 2)
        table.free(seg.segment_id)
        assert table.try_allocate(8, 2) is not None

    def test_free_unknown_raises(self):
        with pytest.raises(KeyError):
            SegmentTable().free(99)

    def test_lookup_and_contains(self):
        table = SegmentTable()
        seg = table.allocate(8, 2)
        assert table.lookup(seg.segment_id) is seg
        assert seg.segment_id in table
        table.free(seg.segment_id)
        assert seg.segment_id not in table
        with pytest.raises(KeyError):
            table.lookup(seg.segment_id)

    def test_counters(self):
        table = SegmentTable(capacity_segments=4)
        table.allocate(8, 2)
        table.allocate(8, 2)
        assert table.in_use == 2
        assert table.free_segments == 2
        assert table.total_allocations == 2


class TestSegmentCompletion:
    def test_completion_by_distinct_offsets(self):
        table = SegmentTable()
        seg = table.allocate(8, 2)
        assert seg.record_packet(0, 4)
        assert not seg.complete
        assert seg.record_packet(4, 4)
        assert seg.complete
        assert seg.received_words == 8

    def test_duplicates_do_not_advance(self):
        table = SegmentTable()
        seg = table.allocate(8, 2)
        seg.record_packet(0, 4)
        assert not seg.record_packet(0, 4)  # duplicate
        assert not seg.complete
        assert seg.duplicate_packets == 1
        assert seg.received_words == 4
