"""Unit tests for the calibrated cost book.

These pin the calibration: the whole-path totals must equal the paper's
Table 1 values and the fitted per-packet/constant components derived from
Tables 2-3 (see the derivation in the module docstring of
:mod:`repro.am.costs`).
"""

import pytest

from repro.am.costs import CmamCosts, CostBook
from repro.arch.isa import mix


class TestCalibrationAtN4:
    """The paper's configuration: four data words per packet."""

    @pytest.fixture
    def book(self):
        return CostBook(n=4)

    def test_am_send_is_20(self, book):
        assert book.am_send_total() == mix(reg=15, dev=5)
        assert book.am_send_total().total == 20

    def test_am_recv_is_27(self, book):
        assert book.am_recv_total() == mix(reg=22, dev=5)
        assert book.am_recv_total().total == 27

    def test_ctrl_send_is_20(self, book):
        assert book.ctrl_send_total() == mix(reg=14, mem=1, dev=5)

    def test_ctrl_recv_is_27(self, book):
        assert book.ctrl_recv_total() == mix(reg=22, dev=5)

    def test_xfer_send_packet(self, book):
        assert book.xfer_send_packet_total() == mix(reg=15, mem=2, dev=5)

    def test_xfer_recv_packet(self, book):
        assert book.xfer_recv_packet_total() == mix(reg=12, mem=2, dev=4)

    def test_stream_send_packet(self, book):
        assert book.stream_send_packet_total() == mix(reg=14, mem=1, dev=5)

    def test_stream_recv_packet(self, book):
        assert book.stream_recv_packet_total() == mix(reg=10, dev=4)

    def test_buffer_mgmt_components_sum_to_paper(self, book):
        c = book.costs
        src = book.ctrl_send_total() + book.ctrl_recv_total()
        assert src == mix(reg=36, mem=1, dev=10)  # paper: 47 at the source
        dst = (
            book.ctrl_recv_total() + c.SEG_ALLOC + book.ctrl_send_total() + c.SEG_DEALLOC
        )
        assert dst == mix(reg=79, mem=12, dev=10)  # paper: 101 at the dest

    def test_stream_inorder_average_is_29_per_packet(self, book):
        c = book.costs
        two_packets = c.STREAM_INSEQ + c.STREAM_OOO_ENQ + c.STREAM_OOO_DRAIN
        assert two_packets.total == 58  # 29/packet with half out of order
        assert two_packets == mix(reg=35, mem=23)

    def test_stream_ft_per_packet_is_29(self, book):
        c = book.costs
        per_packet = c.source_buffer_packet() + book.ctrl_recv_total()
        assert per_packet.total == 29
        assert per_packet == mix(reg=22, mem=2, dev=5)


class TestPacketSizeScaling:
    def test_dev_profile_scales_with_n(self):
        c = CmamCosts(n=8)
        assert c.send_dev(8) == 1 + 4 + 2
        assert c.recv_dev_stream(8) == 1 + 1 + 4
        assert c.recv_dev_generic(8) == 2 + 1 + 4

    def test_partial_packet_mem(self):
        c = CmamCosts(n=8)
        assert c.xfer_send_packet(3) == mix(reg=15, mem=2)
        assert c.xfer_recv_packet(1) == mix(reg=12, mem=1)
        assert c.source_buffer_packet(5) == mix(mem=3)

    def test_control_payload_fixed_regardless_of_n(self):
        for n in (4, 16, 128):
            book = CostBook(n=n)
            assert book.ctrl_send_total().dev == 5
            assert book.ctrl_recv_total().dev == 5

    def test_odd_packet_size_rejected(self):
        with pytest.raises(ValueError):
            CmamCosts(n=5)
        with pytest.raises(ValueError):
            CmamCosts(n=0)

    def test_costbook_n_mismatch_guard(self):
        from repro.analysis.formulas import CostFormulas

        with pytest.raises(ValueError):
            CostFormulas(CmamCosts(n=4), n=8)


class TestCRCalibration:
    def test_cr_recv_one_reg_cheaper(self):
        c = CmamCosts(n=4)
        assert c.cr_recv_packet() == c.xfer_recv_packet() - mix(reg=1)

    def test_cr_const_two_cheaper(self):
        c = CmamCosts(n=4)
        assert c.CR_RECV_CONST == c.XFER_RECV_CONST - mix(reg=2)

    def test_cr_table_store_is_small(self):
        c = CmamCosts(n=4)
        assert c.CR_TABLE_STORE.total == 6
