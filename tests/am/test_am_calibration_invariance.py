"""Calibration-split invariance.

The paper's tables pin down *sums* of some cost components, not their
splits: the out-of-order enqueue/drain pair is only constrained to
(reg 27, mem 22) combined, and the segment alloc/dealloc pair to
(reg 43, mem 11) combined.  Our chosen splits are documented in
``repro.am.costs``; these tests prove the published numbers — and thus
every headline claim — are invariant to re-splitting, so the choice
cannot have biased the reproduction.
"""

import dataclasses

import pytest

from repro import quick_setup, run_finite_sequence, run_indefinite_sequence
from repro.am.costs import CmamCosts
from repro.arch.isa import mix
from repro.network.delivery import InOrderDelivery


def _resplit_ooo(costs: CmamCosts, enq_reg: int, enq_mem: int) -> CmamCosts:
    """Move the ooo budget between enqueue and drain, preserving the sum."""
    total = costs.STREAM_OOO_ENQ + costs.STREAM_OOO_DRAIN
    enq = mix(reg=enq_reg, mem=enq_mem)
    drain = total - enq
    assert drain.reg >= 0 and drain.mem >= 0
    return dataclasses.replace(costs, STREAM_OOO_ENQ=enq, STREAM_OOO_DRAIN=drain)


def _resplit_segments(costs: CmamCosts, alloc_reg: int, alloc_mem: int) -> CmamCosts:
    total = costs.SEG_ALLOC + costs.SEG_DEALLOC
    alloc = mix(reg=alloc_reg, mem=alloc_mem)
    dealloc = total - alloc
    assert dealloc.reg >= 0 and dealloc.mem >= 0
    return dataclasses.replace(costs, SEG_ALLOC=alloc, SEG_DEALLOC=dealloc)


class TestOooSplitInvariance:
    @pytest.mark.parametrize("enq_reg,enq_mem", [(0, 0), (10, 5), (27, 22)])
    def test_stream_totals_unchanged(self, enq_reg, enq_mem):
        """Every complete run drains exactly what it enqueued, so any
        enqueue/drain split with the published sum gives the same totals."""
        costs = _resplit_ooo(CmamCosts(n=4), enq_reg, enq_mem)
        for words, expected in ((16, 481), (1024, 29965)):
            sim, src, dst, _net = quick_setup()
            result = run_indefinite_sequence(sim, src, dst, words, costs=costs)
            assert result.total == expected

    def test_split_does_shift_transient_accounting(self):
        """The split is not *observable* in totals, but it is real: a
        stream with parked packets mid-flight attributes differently."""
        heavy_enq = _resplit_ooo(CmamCosts(n=4), 27, 22)
        light_enq = _resplit_ooo(CmamCosts(n=4), 0, 0)
        assert heavy_enq.STREAM_OOO_ENQ != light_enq.STREAM_OOO_ENQ
        assert (
            heavy_enq.STREAM_OOO_ENQ + heavy_enq.STREAM_OOO_DRAIN
            == light_enq.STREAM_OOO_ENQ + light_enq.STREAM_OOO_DRAIN
        )


class TestSegmentSplitInvariance:
    @pytest.mark.parametrize("alloc_reg,alloc_mem", [(0, 0), (20, 11), (43, 0)])
    def test_finite_totals_unchanged(self, alloc_reg, alloc_mem):
        """Every completed transfer both allocates and deallocates, so any
        alloc/dealloc split with the published sum gives the same totals."""
        costs = _resplit_segments(CmamCosts(n=4), alloc_reg, alloc_mem)
        for words, expected in ((16, 397), (1024, 11737)):
            sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
            result = run_finite_sequence(sim, src, dst, words, costs=costs)
            assert result.total == expected


class TestPublishedSumsPinned:
    def test_ooo_sum_is_published_value(self):
        costs = CmamCosts(n=4)
        assert costs.STREAM_OOO_ENQ + costs.STREAM_OOO_DRAIN == mix(reg=27, mem=22)

    def test_segment_sum_is_published_value(self):
        costs = CmamCosts(n=4)
        assert costs.SEG_ALLOC + costs.SEG_DEALLOC == mix(reg=43, mem=11)
