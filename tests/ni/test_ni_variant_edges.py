"""Edge cases for NI variants and the register-charging proxy."""

import pytest

from repro.am.cmam import AMDispatcher, cmam_4
from repro.am.handlers import CollectingHandler
from repro.arch.isa import mix
from repro.network.cm5 import CM5Network
from repro.network.delivery import InOrderDelivery
from repro.network.packet import PacketType
from repro.ni.variants import CoupledNI, DMANI
from repro.node import Node
from repro.sim.engine import Simulator


def coupled_pair():
    sim = Simulator()
    net = CM5Network(sim, delivery_factory=InOrderDelivery)
    src = Node(0, sim, net, ni_class=CoupledNI)
    dst = Node(1, sim, net, ni_class=CoupledNI)
    return sim, src, dst


class TestCoupledProxy:
    def test_dev_charges_become_reg(self):
        sim, src, dst = coupled_pair()
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
        assert src.processor.costs.total_mix == mix(reg=1)

    def test_proxy_passes_through_other_methods(self):
        sim, src, dst = coupled_pair()
        # The NI calls attribute()/charge() on the proxy; those must reach
        # the real processor.
        collector = CollectingHandler()
        dst.register_handler("h", collector)
        AMDispatcher(dst)
        cmam_4(src, 1, "h", (1, 2, 3, 4))
        sim.run()
        assert collector.count == 1
        assert src.processor.costs.total == 20   # same count, reclassified
        assert src.processor.costs.total_mix.dev == 0

    def test_variant_name(self):
        assert CoupledNI.variant_name == "coupled"
        assert DMANI.variant_name == "dma"


class TestDmaEdges:
    def test_dma_stream_receive_free_payload(self):
        sim = Simulator()
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        src = Node(0, sim, net, ni_class=DMANI)
        dst = Node(1, sim, net, ni_class=DMANI)
        collector = CollectingHandler()
        dst.register_handler("h", collector)
        AMDispatcher(dst)
        cmam_4(src, 1, "h", (9, 9, 9, 9))
        sim.run()
        assert collector.invocations == [(9, 9, 9, 9)]
        # Destination paid no per-word payload loads: generic receive is
        # 2 status + 1 envelope dev only.
        assert dst.processor.costs.total_mix.dev == 3

    def test_descriptor_amortization(self):
        sim = Simulator()
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        src = Node(0, sim, net, ni_class=DMANI)
        Node(1, sim, net)


        for i in range(20):
            src.ni.store_header(1, PacketType.STREAM_DATA, seq=i)
            src.ni.store_payload((1, 2, 3, 4))
            src.ni.launch()
        # 20 packets / 16-packet blocks = 2 descriptors.
        assert src.ni.descriptors_programmed == 2

    def test_dma_empty_payload_no_descriptor(self):
        sim = Simulator()
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        src = Node(0, sim, net, ni_class=DMANI)
        Node(1, sim, net)


        src.ni.store_header(1, PacketType.STREAM_ACK)
        src.ni.store_payload(())
        src.ni.launch()
        assert src.ni.descriptors_programmed == 0
