"""Unit tests for NI FIFOs."""

import pytest

from repro.network.packet import Packet, PacketType
from repro.ni.fifo import NiFifo


def packet(i):
    return Packet(src=0, dst=1, ptype=PacketType.ACTIVE_MESSAGE, payload=(i,))


class TestNiFifo:
    def test_fifo_order(self):
        fifo = NiFifo(capacity=4)
        for i in range(3):
            assert fifo.offer(packet(i))
        assert [fifo.pop().payload[0] for _ in range(3)] == [0, 1, 2]

    def test_overflow_drops_and_counts(self):
        fifo = NiFifo(capacity=2)
        assert fifo.offer(packet(0))
        assert fifo.offer(packet(1))
        assert not fifo.offer(packet(2))
        assert fifo.overflow_count == 1
        assert fifo.occupancy == 2

    def test_peek_non_consuming(self):
        fifo = NiFifo()
        fifo.offer(packet(7))
        assert fifo.peek().payload == (7,)
        assert fifo.occupancy == 1

    def test_peek_empty(self):
        assert NiFifo().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            NiFifo().pop()

    def test_drain(self):
        fifo = NiFifo()
        for i in range(3):
            fifo.offer(packet(i))
        drained = fifo.drain()
        assert len(drained) == 3
        assert fifo.occupancy == 0

    def test_peak_occupancy(self):
        fifo = NiFifo(capacity=8)
        for i in range(5):
            fifo.offer(packet(i))
        fifo.drain()
        assert fifo.peak_occupancy == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NiFifo(capacity=0)
