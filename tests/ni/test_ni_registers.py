"""Unit tests for NI control registers."""

from repro.ni.registers import RegisterFile, StatusFlag


class TestRegisterFile:
    def test_read_unset_is_zero(self):
        assert RegisterFile().read("scratch") == 0

    def test_write_read(self):
        regs = RegisterFile()
        regs.write("scratch", 0xDEAD)
        assert regs.read("scratch") == 0xDEAD

    def test_write_masks_to_32_bits(self):
        regs = RegisterFile()
        regs.write("scratch", 1 << 40)
        assert regs.read("scratch") == 0

    def test_initial_status_has_send_space(self):
        assert RegisterFile().test_flag(StatusFlag.SEND_SPACE)


class TestStatusFlags:
    def test_set_and_test(self):
        regs = RegisterFile()
        regs.set_flag(StatusFlag.RECV_READY)
        assert regs.test_flag(StatusFlag.RECV_READY)

    def test_clear(self):
        regs = RegisterFile()
        regs.set_flag(StatusFlag.RECV_READY)
        regs.set_flag(StatusFlag.RECV_READY, on=False)
        assert not regs.test_flag(StatusFlag.RECV_READY)

    def test_flags_independent(self):
        regs = RegisterFile()
        regs.set_flag(StatusFlag.SEND_OK)
        regs.set_flag(StatusFlag.RECV_ERROR)
        regs.set_flag(StatusFlag.SEND_OK, on=False)
        assert regs.test_flag(StatusFlag.RECV_ERROR)
        assert not regs.test_flag(StatusFlag.SEND_OK)

    def test_status_property_combines(self):
        regs = RegisterFile()
        regs.set_flag(StatusFlag.SEND_OK)
        assert StatusFlag.SEND_OK in regs.status
        assert StatusFlag.SEND_SPACE in regs.status
