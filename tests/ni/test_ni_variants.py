"""Tests for the improved-NI variants (Section 5)."""

import pytest

from repro.am.costs import CmamCosts
from repro.analysis.ni_study import ni_variant_study, overhead_share_by_variant
from repro.arch.costmodel import CM5_CYCLE_MODEL
from repro.network.cm5 import CM5Network
from repro.network.delivery import InOrderDelivery
from repro.ni.variants import CoupledNI, DMANI, ni_factory
from repro.node import Node
from repro.protocols.finite_sequence import run_finite_sequence
from repro.sim.engine import Simulator


def pair(ni_class, **ni_kwargs):
    sim = Simulator()
    net = CM5Network(sim, delivery_factory=InOrderDelivery)
    # ni_kwargs apply only through Node for standard signature; build manually
    src = Node(0, sim, net, ni_class=ni_class)
    dst = Node(1, sim, net, ni_class=ni_class)
    return sim, src, dst


class TestCoupledNI:
    def test_no_dev_instructions(self):
        sim, src, dst = pair(CoupledNI)
        result = run_finite_sequence(sim, src, dst, 16)
        assert result.completed
        assert result.src_costs.total_mix.dev == 0
        assert result.dst_costs.total_mix.dev == 0

    def test_total_instruction_count_unchanged(self):
        """Coupling moves dev work to reg; it does not remove work."""
        sim, src, dst = pair(CoupledNI)
        coupled = run_finite_sequence(sim, src, dst, 16)
        assert coupled.total == 397  # same as the CM-5 NI

    def test_cycles_fall_under_weighted_model(self):
        sim, src, dst = pair(CoupledNI)
        coupled = run_finite_sequence(sim, src, dst, 16)
        from repro import quick_setup, InOrderDelivery as IOD
        sim2, src2, dst2, _net = quick_setup(delivery_factory=IOD)
        baseline = run_finite_sequence(sim2, src2, dst2, 16)
        assert (CM5_CYCLE_MODEL.matrix_cycles(coupled.combined())
                < CM5_CYCLE_MODEL.matrix_cycles(baseline.combined()))

    def test_functionality_intact(self):
        sim, src, dst = pair(CoupledNI)
        message = list(range(9, 41))
        result = run_finite_sequence(sim, src, dst, 32, message=message)
        assert result.delivered_words == message


class TestDMANI:
    def test_fewer_instructions_for_bulk(self):
        sim, src, dst = pair(DMANI)
        dma = run_finite_sequence(sim, src, dst, 1024)
        assert dma.completed
        assert dma.total < 11737  # cheaper than the baseline NI

    def test_benefit_small_for_small_packets(self):
        """Section 5: DMA is 'unlikely to give much benefit for the packet
        sizes we have considered' — under 10 % at n=4."""
        sim, src, dst = pair(DMANI)
        dma = run_finite_sequence(sim, src, dst, 1024)
        assert 1 - dma.total / 11737 < 0.10

    def test_descriptor_accounting(self):
        sim, src, dst = pair(DMANI)
        run_finite_sequence(sim, src, dst, 1024)
        # 256 data packets / 16 per descriptor = 16 descriptors (plus the
        # control packets' descriptors).
        assert src.ni.descriptors_programmed >= 16

    def test_data_still_correct(self):
        sim, src, dst = pair(DMANI)
        message = list(range(3, 103))
        result = run_finite_sequence(sim, src, dst, 100, message=message)
        assert result.delivered_words == message

    def test_invalid_block_size(self):
        sim = Simulator()
        net = CM5Network(sim)
        from repro.arch.machine import AbstractProcessor

        with pytest.raises(ValueError):
            DMANI(0, AbstractProcessor(), net, dma_block_packets=0)


class TestNiStudy:
    def test_factory(self):
        assert ni_factory("cm5").__name__ == "CM5NetworkInterface"
        assert ni_factory("coupled") is CoupledNI
        assert ni_factory("dma") is DMANI
        with pytest.raises(KeyError):
            ni_factory("quantum")

    def test_paradox_reproduced(self):
        """The coupled NI *raises* the overhead share of cycles — the
        paper's 'paradoxically, such improvements will only worsen the
        situation'."""
        points = ni_variant_study(256)
        table = overhead_share_by_variant(points)
        for protocol in ("finite-sequence", "indefinite-sequence"):
            assert table[protocol]["coupled"] > table[protocol]["cm5"]

    def test_all_variants_complete(self):
        points = ni_variant_study(64)
        assert len(points) == 6
        assert all(p.total_instructions > 0 for p in points)
