"""Unit tests for the memory-mapped NI: dev accounting and behaviour."""

import pytest

from repro.arch.isa import mix
from repro.network.cm5 import CM5Network
from repro.network.delivery import InOrderDelivery
from repro.network.packet import Packet, PacketType
from repro.ni.registers import StatusFlag
from repro.node import Node
from repro.sim.engine import Simulator


@pytest.fixture
def pair():
    sim = Simulator()
    net = CM5Network(sim, delivery_factory=InOrderDelivery)
    src, dst = Node(0, sim, net), Node(1, sim, net)
    return sim, src, dst


class TestSendAccounting:
    def test_header_store_costs_one_dev(self, pair):
        _sim, src, _dst = pair
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
        assert src.processor.costs.total_mix == mix(dev=1)

    def test_payload_double_word_stores(self, pair):
        _sim, src, _dst = pair
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
        src.ni.store_payload((1, 2, 3, 4))
        assert src.processor.costs.total_mix == mix(dev=3)  # header + 2 stores

    def test_odd_word_payload_rounds_up(self, pair):
        _sim, src, _dst = pair
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
        src.ni.store_payload((1, 2, 3))
        assert src.processor.costs.total_mix == mix(dev=1 + 2)

    def test_status_load_costs_one_dev(self, pair):
        _sim, src, _dst = pair
        src.ni.load_status()
        assert src.processor.costs.total_mix == mix(dev=1)

    def test_launch_is_free(self, pair):
        sim, src, dst = pair
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
        src.ni.store_payload((1, 2))
        before = src.processor.costs.total
        src.ni.launch()
        assert src.processor.costs.total == before
        assert src.ni.sent_packets == 1

    def test_payload_without_header_raises(self, pair):
        _sim, src, _dst = pair
        with pytest.raises(RuntimeError):
            src.ni.store_payload((1,))

    def test_launch_without_staged_raises(self, pair):
        _sim, src, _dst = pair
        with pytest.raises(RuntimeError):
            src.ni.launch()

    def test_oversized_staging_rejected(self, pair):
        _sim, src, _dst = pair
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
        with pytest.raises(ValueError):
            src.ni.store_payload((1, 2, 3, 4, 5))


class TestReceiveBehaviour:
    def _send(self, sim, src, payload=(9, 8)):
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE, handler="h")
        src.ni.store_payload(payload)
        src.ni.launch()
        sim.run()

    def test_delivery_lands_in_fifo_and_notifies(self, pair):
        sim, src, dst = pair
        pokes = []
        dst.ni.set_notify(lambda: pokes.append(sim.now))
        self._send(sim, src)
        assert dst.ni.recv_ready
        assert len(pokes) == 1

    def test_status_reflects_recv_ready(self, pair):
        sim, src, dst = pair
        assert StatusFlag.RECV_READY not in dst.ni.load_status()
        self._send(sim, src)
        assert StatusFlag.RECV_READY in dst.ni.load_status()

    def test_envelope_then_payload_accounting(self, pair):
        sim, src, dst = pair
        self._send(sim, src, payload=(9, 8, 7, 6))
        base = dst.processor.costs.total_mix
        envelope = dst.ni.load_envelope()
        assert envelope.handler == "h"
        payload = dst.ni.load_payload()
        assert payload == (9, 8, 7, 6)
        assert dst.processor.costs.total_mix - base == mix(dev=1 + 2)
        assert not dst.ni.recv_ready

    def test_envelope_does_not_consume(self, pair):
        sim, src, dst = pair
        self._send(sim, src)
        dst.ni.load_envelope()
        assert dst.ni.recv_ready

    def test_load_on_empty_fifo_raises(self, pair):
        _sim, _src, dst = pair
        with pytest.raises(RuntimeError):
            dst.ni.load_envelope()
        with pytest.raises(RuntimeError):
            dst.ni.load_payload()

    def test_discard_head_free_and_consumes(self, pair):
        sim, src, dst = pair
        self._send(sim, src)
        before = dst.processor.costs.total
        dst.ni.discard_head()
        assert dst.processor.costs.total == before
        assert not dst.ni.recv_ready


class TestHardwareFaultDetection:
    def test_corrupt_packet_dropped_with_error_flag(self):
        from repro.network.faults import FaultInjector, FaultPlan

        sim = Simulator()
        net = CM5Network(
            sim,
            delivery_factory=InOrderDelivery,
            injector=FaultInjector(FaultPlan.corrupt_indices(0, 1, [-1])),
        )
        src, dst = Node(0, sim, net), Node(1, sim, net)
        src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
        src.ni.store_payload((1,))
        src.ni.launch()
        sim.run()
        assert dst.ni.detected_errors == 1
        assert not dst.ni.recv_ready
        assert dst.ni.registers.test_flag(StatusFlag.RECV_ERROR)

    def test_recv_fifo_overflow_loses_packets(self):
        sim = Simulator()
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        src = Node(0, sim, net)
        dst = Node(1, sim, net, recv_capacity=2)
        for i in range(4):
            src.ni.store_header(1, PacketType.ACTIVE_MESSAGE)
            src.ni.store_payload((i,))
            src.ni.launch()
        sim.run()
        # Nothing drained the FIFO: only the first two survive.
        assert dst.ni.recv_fifo.occupancy == 2
        assert dst.ni.recv_fifo.overflow_count == 2
