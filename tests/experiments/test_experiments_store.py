"""Tests for experiment persistence and regression diffing."""

import json
import os

import pytest

from repro.experiments.common import ExperimentOutput
from repro.experiments.store import diff_runs, load_run, save_outputs


def make_output(experiment_id="exp1", data=None, checks=None):
    return ExperimentOutput(
        experiment_id=experiment_id,
        title="A test experiment",
        rendered="(table)",
        data=data if data is not None else {"total": 397, "nested": {"a": 1}},
        checks=checks if checks is not None else {"matches paper": True},
    )


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        paths = save_outputs([make_output()], str(tmp_path))
        assert len(paths) == 1
        run = load_run(str(tmp_path))
        assert run["exp1"]["data"]["total"] == 397
        assert run["exp1"]["checks"]["matches paper"] is True
        assert run["exp1"]["pass"] is True

    def test_files_are_valid_json(self, tmp_path):
        save_outputs([make_output("a"), make_output("b")], str(tmp_path))
        for name in os.listdir(tmp_path):
            with open(tmp_path / name) as handle:
                json.load(handle)

    def test_missing_directory(self):
        with pytest.raises(FileNotFoundError):
            load_run("/nonexistent/run/dir")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(str(tmp_path))


class TestDiff:
    def _run(self, tmp_path, name, outputs):
        directory = str(tmp_path / name)
        save_outputs(outputs, directory)
        return load_run(directory)

    def test_identical_runs(self, tmp_path):
        a = self._run(tmp_path, "a", [make_output()])
        b = self._run(tmp_path, "b", [make_output()])
        diff = diff_runs(a, b)
        assert not diff.is_regression
        assert diff.render() == "runs identical"

    def test_data_drift_detected(self, tmp_path):
        a = self._run(tmp_path, "a", [make_output(data={"total": 397})])
        b = self._run(tmp_path, "b", [make_output(data={"total": 398})])
        diff = diff_runs(a, b)
        assert diff.is_regression
        assert any("397" in change and "398" in change for change in diff.data_changes)

    def test_newly_failing_check_detected(self, tmp_path):
        a = self._run(tmp_path, "a", [make_output(checks={"c": True})])
        b = self._run(tmp_path, "b", [make_output(checks={"c": False})])
        diff = diff_runs(a, b)
        assert diff.is_regression
        assert diff.newly_failing_checks == ["exp1: c"]

    def test_missing_experiment_is_regression(self, tmp_path):
        a = self._run(tmp_path, "a", [make_output("x"), make_output("y")])
        b = self._run(tmp_path, "b", [make_output("x")])
        diff = diff_runs(a, b)
        assert diff.missing_experiments == ["y"]
        assert diff.is_regression

    def test_new_experiment_is_not_regression(self, tmp_path):
        a = self._run(tmp_path, "a", [make_output("x")])
        b = self._run(tmp_path, "b", [make_output("x"), make_output("z")])
        diff = diff_runs(a, b)
        assert diff.new_experiments == ["z"]
        assert not diff.is_regression

    def test_nested_data_flattening(self, tmp_path):
        a = self._run(tmp_path, "a", [make_output(data={"n": {"deep": [1, 2]}})])
        b = self._run(tmp_path, "b", [make_output(data={"n": {"deep": [1, 3]}})])
        diff = diff_runs(a, b)
        assert any("deep[1]" in change for change in diff.data_changes)


class TestRunnerIntegration:
    def test_save_and_diff_cli(self, tmp_path, capsys):
        from repro.experiments.runner import main

        baseline = str(tmp_path / "baseline")
        assert main(["table1", "--quiet", "--save", baseline]) == 0
        assert os.path.exists(os.path.join(baseline, "table1.json"))
        # Re-running and diffing against the saved baseline: identical.
        assert main(["table1", "--quiet", "--diff", baseline]) == 0
        captured = capsys.readouterr()
        assert "runs identical" in captured.out
