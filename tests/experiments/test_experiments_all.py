"""Tests for the experiment harness: every artifact regenerates and its
fidelity checks pass."""

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_passes_fidelity_checks(experiment_id):
    output = get_experiment(experiment_id)()
    assert output.experiment_id == experiment_id
    assert output.rendered  # produced something
    failing = [name for name, ok in output.checks.items() if not ok]
    assert not failing, f"failing checks: {failing}"


def test_registry_covers_every_paper_artifact():
    assert {"table1", "table2", "table3", "figure6", "figure8"} <= set(EXPERIMENTS)


def test_unknown_experiment():
    with pytest.raises(KeyError):
        get_experiment("table99")


def test_render_contains_title_and_checks():
    output = get_experiment("table1")()
    text = output.render()
    assert "table1" in text
    assert "[PASS]" in text


class TestRunnerCli:
    def test_quiet_all(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "[PASS] table1" in captured.out

    def test_full_output(self, capsys):
        from repro.experiments.runner import main

        assert main(["table1"]) == 0
        captured = capsys.readouterr()
        assert "Source" in captured.out

    def test_specific_tables_data(self):
        output = get_experiment("table2")()
        assert output.data["finite-sequence-16"] == (173, 224, 397)
        assert output.data["indefinite-sequence-1024"] == (13824, 16141, 29965)
