"""Edge cases for the bulk API and experiment-output plumbing."""

import pytest

from repro import quick_setup
from repro.api import Endpoint, bulk_put
from repro.experiments.common import ExperimentOutput


class TestBulkEdges:
    def test_fire_and_forget_mode(self):
        sim, a, b, _net = quick_setup()
        ea, eb = Endpoint(a), Endpoint(b)
        result = bulk_put(ea, eb, [1, 2, 3], run_to_completion=False)
        assert not result.completed
        assert result.data == []
        # The transfer is in flight; drain it and confirm arrival.
        sim.run()
        assert b.node_id == eb.node_id
        plumbing = b._bulk_plumbing
        assert len(plumbing.completions) == 1

    def test_single_word_transfer(self):
        sim, a, b, _net = quick_setup()
        result = bulk_put(Endpoint(a), Endpoint(b), [42])
        assert result.completed
        assert result.data == [42]
        assert result.packets == 1

    def test_with_retransmission_enabled(self):
        from repro import FaultInjector, FaultPlan, InOrderDelivery

        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [0]))
        sim, a, b, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        result = bulk_put(Endpoint(a), Endpoint(b), list(range(8)), rto=150.0)
        assert result.completed
        assert result.data == list(range(8))


class TestExperimentOutput:
    def test_all_checks_pass_logic(self):
        good = ExperimentOutput("e", "t", "r", checks={"a": True})
        bad = ExperimentOutput("e", "t", "r", checks={"a": True, "b": False})
        empty = ExperimentOutput("e", "t", "r")
        assert good.all_checks_pass
        assert not bad.all_checks_pass
        assert empty.all_checks_pass  # vacuous

    def test_render_shows_fail_markers(self):
        output = ExperimentOutput("e", "t", "body", checks={"broken": False})
        text = output.render()
        assert "[FAIL] broken" in text
        assert "body" in text
