"""Tests for message-size distributions."""

import random

import pytest

from repro.workloads.messages import (
    BimodalSize,
    FixedSize,
    PAPER_LARGE_WORDS,
    PAPER_SMALL_WORDS,
    UniformSize,
)


def test_paper_sizes():
    assert PAPER_SMALL_WORDS == 16
    assert PAPER_LARGE_WORDS == 1024


class TestFixed:
    def test_constant(self):
        dist = FixedSize(16)
        rng = random.Random(0)
        assert dist.stream(rng, 10) == [16] * 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedSize(0)


class TestUniform:
    def test_within_bounds(self):
        dist = UniformSize(4, 64)
        rng = random.Random(1)
        samples = dist.stream(rng, 500)
        assert all(4 <= s <= 64 for s in samples)
        assert min(samples) < 10 and max(samples) > 58  # actually spreads

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformSize(10, 5)
        with pytest.raises(ValueError):
            UniformSize(0, 5)


class TestBimodal:
    def test_mix_ratio(self):
        dist = BimodalSize(large_fraction=0.2)
        rng = random.Random(2)
        samples = dist.stream(rng, 5000)
        large = sum(1 for s in samples if s == PAPER_LARGE_WORDS)
        assert large / 5000 == pytest.approx(0.2, abs=0.03)
        assert set(samples) == {PAPER_SMALL_WORDS, PAPER_LARGE_WORDS}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            BimodalSize(large_fraction=2.0)
