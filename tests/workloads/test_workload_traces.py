"""Tests for synthetic traces."""

import random

import pytest

from repro.workloads.messages import FixedSize
from repro.workloads.traces import SyntheticTrace, TraceEvent


class TestTraceBasics:
    def test_events_sorted_by_time(self):
        trace = SyntheticTrace([
            TraceEvent(5.0, 0, 1, 16),
            TraceEvent(1.0, 1, 0, 16),
        ])
        assert [e.time for e in trace] == [1.0, 5.0]

    def test_aggregates(self):
        trace = SyntheticTrace([
            TraceEvent(1.0, 0, 1, 16),
            TraceEvent(2.0, 1, 2, 32),
        ])
        assert len(trace) == 2
        assert trace.total_words == 48
        assert trace.duration == 2.0

    def test_empty_trace(self):
        trace = SyntheticTrace([])
        assert trace.duration == 0.0
        assert trace.total_words == 0


class TestGenerators:
    def test_poisson_shape(self):
        trace = SyntheticTrace.poisson(
            8, 200, rate=2.0, rng=random.Random(0), sizes=FixedSize(16)
        )
        assert len(trace) == 200
        times = [e.time for e in trace]
        assert times == sorted(times)
        assert all(e.words == 16 for e in trace)
        # Mean inter-arrival ~ 1/rate.
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(0.5, abs=0.15)

    def test_poisson_invalid_rate(self):
        with pytest.raises(ValueError):
            SyntheticTrace.poisson(4, 10, rate=0.0, rng=random.Random(0))

    def test_bursty_structure(self):
        trace = SyntheticTrace.bursty(
            8, bursts=3, burst_len=5, gap=100.0, rng=random.Random(1)
        )
        assert len(trace) == 15
        distinct_times = sorted({e.time for e in trace})
        assert distinct_times == [0.0, 100.0, 200.0]

    def test_deterministic_given_seed(self):
        a = SyntheticTrace.poisson(8, 50, 1.0, random.Random(42))
        b = SyntheticTrace.poisson(8, 50, 1.0, random.Random(42))
        assert [(e.time, e.src, e.dst) for e in a] == [
            (e.time, e.src, e.dst) for e in b
        ]
