"""Tests for communication patterns."""

import random

import pytest

from repro.workloads.patterns import (
    hotspot_pairs,
    pairwise,
    permutation_pairs,
    uniform_random_pairs,
)


class TestPairwise:
    def test_default(self):
        assert pairwise() == [(0, 1)]

    def test_same_node_rejected(self):
        with pytest.raises(ValueError):
            pairwise(3, 3)


class TestUniformRandom:
    def test_no_self_sends(self):
        rng = random.Random(0)
        pairs = uniform_random_pairs(8, 1000, rng)
        assert len(pairs) == 1000
        assert all(src != dst for src, dst in pairs)
        assert all(0 <= s < 8 and 0 <= d < 8 for s, d in pairs)

    def test_covers_all_destinations(self):
        rng = random.Random(0)
        pairs = uniform_random_pairs(4, 500, rng)
        assert {d for _s, d in pairs} == {0, 1, 2, 3}

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            uniform_random_pairs(1, 5, random.Random(0))


class TestPermutation:
    def test_is_derangement(self):
        rng = random.Random(5)
        pairs = permutation_pairs(16, rng)
        assert len(pairs) == 16
        assert all(src != dst for src, dst in pairs)
        assert sorted(d for _s, d in pairs) == list(range(16))
        assert sorted(s for s, _d in pairs) == list(range(16))


class TestHotspot:
    def test_hotspot_attracts_heat(self):
        rng = random.Random(3)
        pairs = hotspot_pairs(16, 4000, rng, hotspot=5, heat=0.5)
        to_hot = sum(1 for _s, d in pairs if d == 5)
        assert to_hot / 4000 > 0.4
        assert all(s != d for s, d in pairs)

    def test_zero_heat_uniformish(self):
        rng = random.Random(3)
        pairs = hotspot_pairs(16, 4000, rng, hotspot=5, heat=0.0)
        to_hot = sum(1 for _s, d in pairs if d == 5)
        assert to_hot / 4000 < 0.15

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            hotspot_pairs(8, 10, rng, hotspot=9)
        with pytest.raises(ValueError):
            hotspot_pairs(8, 10, rng, heat=1.5)
