"""Tests for the multi-node workload engine."""

import random

import pytest

from repro.am.costs import CmamCosts
from repro.analysis.formulas import CostFormulas
from repro.network.cm5 import CM5Network
from repro.sim.engine import Simulator
from repro.workloads.engine import WorkloadEngine
from repro.workloads.messages import FixedSize, UniformSize
from repro.workloads.traces import SyntheticTrace, TraceEvent


def make_engine(n_nodes=8):
    sim = Simulator()
    net = CM5Network(sim)
    return sim, WorkloadEngine(sim, net, n_nodes=n_nodes)


class TestExecution:
    def test_poisson_workload_completes(self):
        sim, engine = make_engine()
        trace = SyntheticTrace.poisson(
            8, 40, rate=0.02, rng=random.Random(1), sizes=FixedSize(64)
        )
        engine.submit(trace)
        report = engine.run()
        assert report.all_done
        assert report.completed == 40
        assert report.latency.n == 40
        assert report.latency.min > 0

    def test_mixed_sizes(self):
        sim, engine = make_engine()
        trace = SyntheticTrace.poisson(
            8, 30, rate=0.02, rng=random.Random(2), sizes=UniformSize(4, 256)
        )
        engine.submit(trace)
        report = engine.run()
        assert report.all_done

    def test_bursty_workload_serializes_per_source(self):
        """A burst from one source is processed one transfer at a time;
        later transfers in the burst see queueing latency."""
        sim, engine = make_engine(n_nodes=4)
        events = [TraceEvent(time=0.0, src=0, dst=1, words=64) for _ in range(5)]
        engine.submit(SyntheticTrace(events))
        report = engine.run()
        assert report.all_done
        latencies = sorted(t.latency for t in report.transfers)
        assert latencies[-1] > latencies[0]  # queueing visible

    def test_validation(self):
        sim, engine = make_engine(n_nodes=4)
        with pytest.raises(ValueError):
            engine.submit(SyntheticTrace([TraceEvent(0.0, 0, 0, 16)]))
        with pytest.raises(ValueError):
            engine.submit(SyntheticTrace([TraceEvent(0.0, 0, 99, 16)]))
        with pytest.raises(ValueError):
            WorkloadEngine(Simulator(), CM5Network(Simulator()), n_nodes=1)


class TestStreamSessions:
    def test_stream_delivers_everything(self):
        sim, engine = make_engine(n_nodes=4)
        session = engine.submit_stream(0, 1, total_words=128, record_gap=1.0)
        report = engine.run()
        assert report.streams_completed == 1
        assert session.delivered_words == 128
        assert session.completed_at > session.started_at

    def test_mixed_bulk_and_stream_workload(self):
        sim, engine = make_engine(n_nodes=8)
        trace = SyntheticTrace.poisson(
            8, 15, rate=0.02, rng=random.Random(9), sizes=FixedSize(64)
        )
        engine.submit(trace)
        engine.submit_stream(2, 5, total_words=64, start_time=10.0)
        engine.submit_stream(6, 3, total_words=32, start_time=50.0)
        report = engine.run()
        assert report.all_done
        assert report.streams_completed == 2

    def test_one_stream_per_source(self):
        sim, engine = make_engine(n_nodes=4)
        engine.submit_stream(0, 1, 16)
        with pytest.raises(ValueError):
            engine.submit_stream(0, 2, 16)

    def test_one_stream_per_sink(self):
        sim, engine = make_engine(n_nodes=4)
        engine.submit_stream(0, 1, 16)
        with pytest.raises(ValueError):
            engine.submit_stream(2, 1, 16)

    def test_invalid_endpoints(self):
        sim, engine = make_engine(n_nodes=4)
        with pytest.raises(ValueError):
            engine.submit_stream(0, 0, 16)
        with pytest.raises(ValueError):
            engine.submit_stream(0, 99, 16)

    def test_stream_costs_counted(self):
        from repro.analysis.formulas import CostFormulas

        sim, engine = make_engine(n_nodes=4)
        engine.submit_stream(0, 1, total_words=64, record_gap=0.0)
        report = engine.run()
        # All packets land in one burst: exactly half arrive out of order
        # on the pair-swap channel, so the calibrated stream total applies.
        expected = CostFormulas(CmamCosts(n=4)).indefinite_sequence(64).total
        assert report.total_instructions == expected


class TestCostAdditivity:
    def test_software_cost_is_sum_of_transfer_costs(self):
        """The paper's cost structure is additive: a workload's total
        instruction bill equals per-transfer cost x transfer count,
        regardless of interleaving."""
        sim, engine = make_engine()
        words = 64
        count = 25
        trace = SyntheticTrace.poisson(
            8, count, rate=0.05, rng=random.Random(3), sizes=FixedSize(words)
        )
        engine.submit(trace)
        report = engine.run()
        per_transfer = CostFormulas(CmamCosts(n=4)).finite_sequence(words).total
        assert report.total_instructions == per_transfer * count

    def test_overhead_fraction_matches_single_transfer(self):
        sim, engine = make_engine()
        trace = SyntheticTrace.poisson(
            8, 20, rate=0.05, rng=random.Random(4), sizes=FixedSize(16)
        )
        engine.submit(trace)
        report = engine.run()
        single = CostFormulas(CmamCosts(n=4)).finite_sequence(16)
        assert report.overhead_fraction == pytest.approx(
            single.overhead_fraction, abs=1e-9
        )

    def test_per_node_costs_sum_to_total(self):
        sim, engine = make_engine()
        trace = SyntheticTrace.poisson(
            8, 20, rate=0.05, rng=random.Random(5), sizes=FixedSize(32)
        )
        engine.submit(trace)
        report = engine.run()
        assert sum(m.total for m in report.node_costs.values()) == (
            report.total_instructions
        )
