"""Tests for the user-facing channels API."""

import pytest

from repro import quick_cr_setup, quick_setup
from repro.api import Endpoint, bulk_put, open_channel


def cmam_endpoints():
    sim, a, b, _net = quick_setup()
    return sim, Endpoint(a), Endpoint(b)


def cr_endpoints():
    sim, a, b, _net = quick_cr_setup()
    return sim, Endpoint(a), Endpoint(b)


class TestEndpoint:
    def test_one_endpoint_per_node(self):
        sim, a, b, _net = quick_setup()
        Endpoint(a)
        with pytest.raises(ValueError):
            Endpoint(a)

    def test_active_message_roundtrip(self):
        sim, ea, eb = cmam_endpoints()
        got = []

        @eb.on("ping")
        def ping(node, *words):
            got.append(words)

        ea.send_am(eb, "ping", (1, 2, 3, 4))
        sim.run()
        assert got == [(1, 2, 3, 4)]


class TestChannel:
    def test_cmam_channel_orders_data(self):
        sim, ea, eb = cmam_endpoints()
        channel = open_channel(ea, eb)
        payload = list(range(7, 107))
        packets = channel.send(payload)
        sim.run()
        channel.close()
        assert channel.mode == "cmam"
        assert packets == 25
        assert channel.receive_buffer.read() == payload

    def test_channel_multiple_sends_concatenate(self):
        sim, ea, eb = cmam_endpoints()
        channel = open_channel(ea, eb)
        channel.send([1, 2, 3])
        channel.send([4, 5])
        sim.run()
        channel.close()
        assert channel.receive_buffer.read() == [1, 2, 3, 4, 5]

    def test_windowed_channel(self):
        sim, ea, eb = cmam_endpoints()
        channel = open_channel(ea, eb, window=4)
        payload = list(range(1, 129))
        channel.send(payload)
        sim.run()
        channel.close()
        assert channel.mode == "windowed"
        assert channel.receive_buffer.read() == payload

    def test_cr_channel_selected_automatically(self):
        sim, ea, eb = cr_endpoints()
        channel = open_channel(ea, eb)
        payload = list(range(1, 65))
        channel.send(payload)
        sim.run()
        assert channel.mode == "cr"
        assert channel.receive_buffer.read() == payload
        assert channel.outstanding == 0  # no source buffering on CR

    def test_record_callback(self):
        sim, ea, eb = cmam_endpoints()
        channel = open_channel(ea, eb)
        seen = []
        channel.receive_buffer.on_record(seen.append)
        channel.send([1, 2, 3, 4, 5, 6, 7, 8])
        sim.run()
        channel.close()
        assert seen == [(1, 2, 3, 4), (5, 6, 7, 8)]

    def test_cross_network_rejected(self):
        sim1, ea, _eb = cmam_endpoints()
        sim2, _ec, ed = cmam_endpoints()
        with pytest.raises(ValueError):
            open_channel(ea, ed)


class TestBulk:
    def test_cmam_bulk_roundtrip(self):
        sim, ea, eb = cmam_endpoints()
        data = list(range(42, 142))
        result = bulk_put(ea, eb, data)
        assert result.completed
        assert result.mode == "cmam"
        assert result.data == data
        assert result.packets == 25

    def test_cr_bulk_roundtrip(self):
        sim, ea, eb = cr_endpoints()
        data = list(range(1, 33))
        result = bulk_put(ea, eb, data)
        assert result.completed
        assert result.mode == "cr"
        assert result.data == data

    def test_sequential_bulk_transfers(self):
        sim, ea, eb = cmam_endpoints()
        first = bulk_put(ea, eb, [1, 2, 3, 4])
        second = bulk_put(ea, eb, [9, 8, 7, 6, 5])
        assert first.completed and second.completed
        assert second.data == [9, 8, 7, 6, 5]

    def test_bidirectional_bulk(self):
        sim, ea, eb = cmam_endpoints()
        there = bulk_put(ea, eb, [1, 2, 3, 4])
        back = bulk_put(eb, ea, [5, 6, 7, 8])
        assert there.completed and back.completed
        assert back.data == [5, 6, 7, 8]

    def test_cross_network_rejected(self):
        sim1, ea, _eb = cmam_endpoints()
        sim2, _ec, ed = cmam_endpoints()
        with pytest.raises(ValueError):
            bulk_put(ea, ed, [1])
