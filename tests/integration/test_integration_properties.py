"""Property-based integration tests over the whole stack (hypothesis).

These lock the DESIGN.md invariants: delivered == sent, user-level
ordering, exact cost accounting under arbitrary parameters, and fault
recovery under arbitrary fault patterns.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CmamCosts,
    FaultInjector,
    FaultPlan,
    FractionReorder,
    InOrderDelivery,
    quick_cr_setup,
    quick_setup,
    run_cr_indefinite_sequence,
    run_finite_sequence,
    run_indefinite_sequence,
)

words_strategy = st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=120)


class TestDeliveryIntegrity:
    @settings(max_examples=30, deadline=None)
    @given(message=words_strategy, n=st.sampled_from([4, 8]))
    def test_finite_delivers_exact_bytes(self, message, n):
        costs = CmamCosts(n=n)
        sim, src, dst, _net = quick_setup(
            packet_size=n, delivery_factory=InOrderDelivery
        )
        result = run_finite_sequence(
            sim, src, dst, len(message), costs=costs, message=message
        )
        assert result.completed
        assert result.delivered_words == message

    @settings(max_examples=30, deadline=None)
    @given(
        message=words_strategy,
        fraction=st.sampled_from([0.0, 0.25, 0.5, 0.75]),
    )
    def test_stream_delivers_in_transmission_order(self, message, fraction):
        sim, src, dst, _net = quick_setup(
            delivery_factory=lambda: FractionReorder(fraction)
        )
        result = run_indefinite_sequence(
            sim, src, dst, len(message), message=message
        )
        assert result.completed
        assert result.delivered_words == message

    @settings(max_examples=20, deadline=None)
    @given(message=words_strategy)
    def test_cr_stream_delivers(self, message):
        sim, src, dst, _net = quick_cr_setup()
        result = run_cr_indefinite_sequence(
            sim, src, dst, len(message), message=message
        )
        assert result.completed
        assert result.delivered_words == message


class TestFaultRecoveryProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        fault_indices=st.sets(st.integers(0, 15), max_size=6),
        kind=st.sampled_from(["drop", "corrupt"]),
    )
    def test_stream_recovers_from_any_fault_pattern(self, fault_indices, kind):
        """Whatever subset of the 16 data packets faults once, the reliable
        stream still delivers everything, in order."""
        plan = (
            FaultPlan.drop_indices(0, 1, fault_indices)
            if kind == "drop"
            else FaultPlan.corrupt_indices(0, 1, fault_indices)
        )
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=FaultInjector(plan)
        )
        message = list(range(1, 65))
        result = run_indefinite_sequence(
            sim, src, dst, 64, message=message, rto=100.0
        )
        assert result.completed
        assert result.delivered_words == message
        if fault_indices:
            assert result.detail["retransmissions"] >= len(fault_indices)

    @settings(max_examples=15, deadline=None)
    @given(fault_indices=st.sets(st.integers(0, 15), max_size=5))
    def test_finite_recovers_from_any_drop_pattern(self, fault_indices):
        plan = FaultPlan.drop_indices(0, 1, fault_indices)
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=FaultInjector(plan)
        )
        message = list(range(1, 65))
        result = run_finite_sequence(
            sim, src, dst, 64, message=message, rto=300.0
        )
        assert result.completed
        assert result.delivered_words == message

    @settings(max_examples=15, deadline=None)
    @given(fault_indices=st.sets(st.integers(0, 31), max_size=8))
    def test_cr_absorbs_any_fault_pattern_at_zero_software_cost(self, fault_indices):
        plan = FaultPlan.corrupt_indices(0, 1, fault_indices)
        sim, src, dst, _net = quick_cr_setup(injector=FaultInjector(plan))
        message = list(range(1, 129))
        result = run_cr_indefinite_sequence(sim, src, dst, 128, message=message)
        assert result.completed
        assert result.delivered_words == message
        assert result.overhead_total == 0


class TestCostMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(
        small=st.integers(1, 200),
        delta=st.integers(1, 200),
    )
    def test_cost_monotone_in_message_size(self, small, delta):
        from repro.analysis.formulas import CostFormulas

        formulas = CostFormulas(CmamCosts(n=4))
        fin_small = formulas.finite_sequence(small).total
        fin_large = formulas.finite_sequence(small + delta).total
        assert fin_large >= fin_small
        ind_small = formulas.indefinite_sequence(small).total
        ind_large = formulas.indefinite_sequence(small + delta).total
        assert ind_large >= ind_small

    @settings(max_examples=20, deadline=None)
    @given(words=st.integers(1, 600), n=st.sampled_from([4, 8, 16, 32]))
    def test_cr_never_costs_more_than_cmam(self, words, n):
        from repro.analysis.formulas import CostFormulas

        formulas = CostFormulas(CmamCosts(n=n))
        assert (
            formulas.cr_finite_sequence(words).total
            <= formulas.finite_sequence(words).total
        )
        assert (
            formulas.cr_indefinite_sequence(words).total
            <= formulas.indefinite_sequence(words).total
        )
