"""Integration: the full CMAM protocols running over the *detailed*
router-level network, not the service-level model.

The protocols never look at which network they ride — the same endpoints
that reproduce the paper's numbers on the service-level model move real
packets through fat-tree routers here, with adaptive routing producing the
reordering the stream protocol must absorb.
"""

import random

import pytest

from repro.am.costs import CmamCosts
from repro.network.fattree import FatTree
from repro.network.router import DetailedNetwork
from repro.network.routing import AdaptiveRouting, DeterministicRouting
from repro.node import Node
from repro.protocols.finite_sequence import run_finite_sequence
from repro.protocols.indefinite_sequence import run_indefinite_sequence
from repro.sim.engine import Simulator


def make_pair(routing, src_id=0, dst_id=15, **net_kwargs):
    sim = Simulator()
    net = DetailedNetwork(
        sim, FatTree(arity=4, height=2, parents=2), routing=routing, **net_kwargs
    )
    src = Node(src_id, sim, net)
    dst = Node(dst_id, sim, net)
    return sim, src, dst, net


class TestFiniteOverDetailedNetwork:
    def test_transfer_completes_with_deterministic_routing(self):
        sim, src, dst, _net = make_pair(DeterministicRouting())
        message = list(range(1, 65))
        result = run_finite_sequence(sim, src, dst, 64, message=message)
        assert result.completed
        assert result.delivered_words == message
        # Costs equal the closed-form model: the protocol cannot tell the
        # networks apart.
        from repro.analysis.formulas import CostFormulas

        assert result.total == CostFormulas(CmamCosts(n=4)).finite_sequence(64).total

    def test_transfer_completes_with_adaptive_routing(self):
        sim, src, dst, _net = make_pair(AdaptiveRouting(random.Random(2)))
        message = list(range(1, 129))
        result = run_finite_sequence(sim, src, dst, 128, message=message)
        assert result.completed
        assert result.delivered_words == message


class TestStreamOverDetailedNetwork:
    def test_stream_in_order_despite_adaptive_network(self):
        sim, src, dst, net = make_pair(AdaptiveRouting(random.Random(7)))
        message = list(range(1, 257))
        result = run_indefinite_sequence(sim, src, dst, 256, message=message)
        assert result.completed
        assert result.delivered_words == message

    def test_measured_ooo_drives_in_order_cost(self):
        """On the detailed network the stream protocol's in-order cost is
        whatever the network's emergent reordering makes it — cross-check
        the charge against the network's own out-of-order measurement."""
        costs = CmamCosts(n=4)
        sim, src, dst, net = make_pair(
            AdaptiveRouting(random.Random(13)), service_time=2.0
        )
        # Congest the upper tree with competing flows.
        others = []
        for flow in (1, 2, 3):
            node = Node(flow, sim, net)
            peer = Node(15 - flow, sim, net)
            others.append((node, peer))
        result = run_indefinite_sequence(sim, src, dst, 256, costs=costs)
        assert result.completed
        assert result.detail["ooo_arrivals"] >= 0
        from repro.analysis.formulas import CostFormulas

        predicted = CostFormulas(costs).indefinite_sequence(
            256, ooo_count=result.detail["ooo_arrivals"]
        )
        assert result.dst_costs == predicted.dst
