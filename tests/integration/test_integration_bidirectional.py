"""Bidirectional and overlapping-traffic integration tests.

The paper measures quiet pairs; these tests confirm the protocols keep
their guarantees when traffic flows both ways at once and when stream and
bulk traffic share the same node pair.
"""

import pytest

from repro import CmamCosts, quick_setup
from repro.am.cmam import AMDispatcher
from repro.protocols.finite_sequence import (
    FiniteSequenceReceiver,
    FiniteSequenceSender,
)
from repro.protocols.indefinite_sequence import StreamReceiver, StreamSender


class TestBidirectionalStreams:
    def test_simultaneous_opposite_streams(self):
        """A->B and B->A streams interleave on the wire; both deliver in
        order with the calibrated per-direction costs."""
        sim, a, b, _net = quick_setup()
        costs = CmamCosts(n=4)
        da, db = AMDispatcher(a, costs=costs), AMDispatcher(b, costs=costs)

        got_at_b, got_at_a = [], []
        StreamReceiver(b, db, costs=costs,
                       deliver=lambda s, p: got_at_b.append(p),
                       expected_total=16)
        StreamReceiver(a, da, costs=costs,
                       deliver=lambda s, p: got_at_a.append(p),
                       expected_total=16)
        ab = StreamSender(a, da, b.node_id, costs=costs)
        ba = StreamSender(b, db, a.node_id, costs=costs)

        forward = [(i, i, i, i) for i in range(16)]
        backward = [(100 + i,) * 4 for i in range(16)]
        for f, g in zip(forward, backward):
            ab.send(f)
            ba.send(g)
        sim.run()
        ab.close()
        ba.close()
        assert got_at_b == forward
        assert got_at_a == backward
        assert ab.outstanding == 0 and ba.outstanding == 0

    def test_stream_and_bulk_share_a_pair(self):
        """A streams to B while B bulk-transfers to A; distinct packet
        types keep the machinery independent."""
        sim, a, b, _net = quick_setup()
        costs = CmamCosts(n=4)
        da, db = AMDispatcher(a, costs=costs), AMDispatcher(b, costs=costs)

        stream_got = []
        StreamReceiver(b, db, costs=costs,
                       deliver=lambda s, p: stream_got.append(p),
                       expected_total=8)
        sender = StreamSender(a, da, b.node_id, costs=costs)

        bulk_done = []
        FiniteSequenceReceiver(
            a, da, costs=costs,
            on_complete=lambda segment: bulk_done.append(segment),
        )
        message = list(range(1, 33))
        b.memory.write_block(0, message)
        bulk = FiniteSequenceSender(b, db, a.node_id, 0, 32, costs=costs)

        bulk.start()
        for i in range(8):
            sender.send((i, i, i, i))
        sim.run()
        sender.close()

        assert [p[0] for p in stream_got] == list(range(8))
        assert bulk.completed
        assert len(bulk_done) == 1
        assert a.memory.read_block(bulk_done[0].base_addr, 32) == message
