"""Overflow and deadlock-safety scenarios (Section 2's service #3).

Demonstrates the failure mode the paper's buffer management exists to
prevent, and each protocol's answer to it:

* raw active-message floods against a bounded NI overflow and lose data;
* the finite-sequence protocol's preallocation handshake refuses what it
  cannot absorb (NACK + backoff), losing nothing;
* the credit-windowed stream bounds receiver memory by construction;
* CR's header rejection lets an unwilling receiver stall one message
  without deadlocking anything else.
"""

import pytest

from repro import quick_setup
from repro.am.cmam import cmam_4
from repro.am.segments import SegmentTable
from repro.network.cm5 import CM5Network
from repro.network.delivery import InOrderDelivery
from repro.node import Node
from repro.protocols.finite_sequence import run_finite_sequence
from repro.protocols.windowed import run_windowed_stream
from repro.sim.engine import Simulator


class TestUnsafeFlood:
    def test_am_flood_overflows_bounded_ni(self):
        """Section 6: the single-packet primitive 'is unsafe because no
        flow control is performed'.  With nothing draining the NI, a burst
        beyond its capacity is simply lost."""
        sim = Simulator()
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        src = Node(0, sim, net)
        dst = Node(1, sim, net, recv_capacity=8)
        # No dispatcher on dst: the node is busy computing, not polling.
        for i in range(32):
            cmam_4(src, 1, "h", (i,))
        sim.run()
        assert dst.ni.recv_fifo.overflow_count == 24
        assert dst.ni.recv_fifo.occupancy == 8

    def test_flood_with_drain_survives(self):
        """The same burst with an attentive receiver loses nothing — the
        hazard is the *absence of flow control*, not the burst itself."""
        from repro.am.cmam import AMDispatcher
        from repro.am.handlers import CollectingHandler

        sim = Simulator()
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        src = Node(0, sim, net)
        dst = Node(1, sim, net, recv_capacity=8)
        collector = CollectingHandler()
        dst.register_handler("h", collector)
        AMDispatcher(dst)
        for i in range(32):
            cmam_4(src, 1, "h", (i,))
        sim.run()
        assert collector.count == 32
        assert dst.ni.recv_fifo.overflow_count == 0


class TestPreallocationSafety:
    def test_exhausted_destination_refuses_rather_than_drops(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        segments = SegmentTable(capacity_segments=1, capacity_words=64)
        hog = segments.allocate(64, 16)
        sim.schedule(1000.0, lambda: segments.free(hog.segment_id))
        result = run_finite_sequence(sim, src, dst, 32, segments=segments)
        assert result.completed
        assert result.detail["request_retries"] >= 1
        # Nothing was lost while the destination was full.
        assert result.delivered_words == list(range(1, 33))

    def test_word_capacity_also_enforced(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        segments = SegmentTable(capacity_segments=8, capacity_words=16)
        with pytest.raises(RuntimeError):
            # 32 words never fit in a 16-word segment budget: permanent NACK.
            run_finite_sequence(sim, src, dst, 32, segments=segments)


class TestWindowedSafety:
    @pytest.mark.parametrize("window", [1, 3, 8])
    def test_receiver_memory_bounded_by_window(self, window):
        sim, src, dst, _net = quick_setup()
        result = run_windowed_stream(
            sim, src, dst, 128, window=window, consume_interval=25.0
        )
        assert result.completed
        assert result.detail["buffer_peak"] <= window


class TestCRDeadlockFreedom:
    def test_stalled_receiver_does_not_block_the_network(self):
        """The defining CR guarantee (Section 4): a node that has committed
        all its resources rejects at the header; everyone else's traffic
        keeps moving the whole time."""
        from repro.network.cr import CRNetwork, CRNetworkConfig
        from repro.am.cmam import AMDispatcher
        from repro.protocols.cr_protocols import (
            CRFiniteReceiver,
            CRFiniteSender,
        )

        sim = Simulator()
        net = CRNetwork(sim, CRNetworkConfig(latency=1.0, reject_backoff=40.0))
        blocked = Node(1, sim, net)
        src = Node(0, sim, net)
        bystander_src = Node(2, sim, net)
        bystander_dst = Node(3, sim, net)

        ready = {"ok": False}
        net.set_acceptor(1, lambda p: ready["ok"])
        sim.schedule(500.0, lambda: ready.update(ok=True))

        done = {}
        CRFiniteReceiver(blocked, AMDispatcher(blocked),
                         on_complete=lambda s, a, w: done.setdefault("blocked", sim.now))
        CRFiniteReceiver(bystander_dst, AMDispatcher(bystander_dst),
                         on_complete=lambda s, a, w: done.setdefault("bystander", sim.now))

        src.memory.write_block(0, list(range(16)))
        bystander_src.memory.write_block(0, list(range(16)))
        CRFiniteSender(src, 1, 0, 16).start()
        CRFiniteSender(bystander_src, 3, 0, 16).start()
        sim.run()

        assert "bystander" in done and "blocked" in done
        # The bystander finished long before the stalled node unblocked.
        assert done["bystander"] < 100.0
        assert done["blocked"] >= 500.0
