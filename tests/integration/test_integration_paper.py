"""End-to-end integration: every headline number and claim of the paper,
reproduced in one place."""

import pytest

from repro import (
    GroupAck,
    InOrderDelivery,
    quick_cr_setup,
    quick_setup,
    run_cr_finite_sequence,
    run_cr_indefinite_sequence,
    run_finite_sequence,
    run_indefinite_sequence,
    run_single_packet,
)
from repro.analysis import published
from repro.arch.costmodel import CM5_CYCLE_MODEL


class TestAbstractNumbers:
    def test_50_to_70_percent_overhead(self):
        """Abstract: 'up to 50-70% of the software messaging costs are a
        direct consequence of the gap between network features ... and
        user communication requirements'."""
        fractions = []
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        fractions.append(run_finite_sequence(sim, src, dst, 16).overhead_fraction)
        sim, src, dst, _net = quick_setup()
        fractions.append(run_indefinite_sequence(sim, src, dst, 16).overhead_fraction)
        sim, src, dst, _net = quick_setup()
        fractions.append(run_indefinite_sequence(sim, src, dst, 1024).overhead_fraction)
        assert all(0.50 <= f <= 0.71 for f in fractions)

    def test_large_finite_transfer_is_the_exception(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 1024)
        assert result.overhead_fraction == pytest.approx(0.126, abs=0.01)

    def test_conclusion_16_word_cost(self):
        """Conclusion: 'the cost of delivering a 16-word message is between
        285 and 481 instructions'.  Our reconstructed finite total is 397
        (285 is not derivable from the published sub-tables); the
        indefinite total matches 481 exactly."""
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        fin = run_finite_sequence(sim, src, dst, 16)
        sim, src, dst, _net = quick_setup()
        ind = run_indefinite_sequence(sim, src, dst, 16)
        lo, hi = published.CLAIM_16W_RANGE
        assert ind.total == hi
        assert lo <= fin.total <= hi


class TestSectionFourNumbers:
    def test_single_packet_identical_on_both_networks_but_safe_on_cr(self):
        sim, src, dst, _net = quick_setup()
        cm5 = run_single_packet(sim, src, dst)
        sim, src, dst, net = quick_cr_setup()
        cr = run_single_packet(sim, src, dst)
        assert cm5.total == cr.total == 47
        assert net.provides_in_order and net.provides_reliability

    def test_cr_removes_everything_but_data_movement(self):
        sim, src, dst, _net = quick_cr_setup()
        result = run_cr_indefinite_sequence(sim, src, dst, 1024)
        assert result.overhead_total == 0

    def test_cr_indefinite_cost_reduction_70_percent(self):
        sim, src, dst, _net = quick_setup()
        cmam = run_indefinite_sequence(sim, src, dst, 1024)
        sim, src, dst, _net = quick_cr_setup()
        cr = run_cr_indefinite_sequence(sim, src, dst, 1024)
        assert 1 - cr.total / cmam.total == pytest.approx(0.709, abs=0.02)


class TestAppendixCycleModel:
    def test_cm5_cycle_estimate_for_16w_finite(self):
        """Appendix A's example weighting applied to the measured matrix."""
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 16)
        src_cycles = CM5_CYCLE_MODEL.matrix_cycles(result.src_costs)
        dst_cycles = CM5_CYCLE_MODEL.matrix_cycles(result.dst_costs)
        # (128,10,35) and (168,24,32) under reg=mem=1, dev=5.
        assert src_cycles == 128 + 10 + 175
        assert dst_cycles == 168 + 24 + 160


class TestGroupAckClaim:
    def test_overhead_with_group_acks(self):
        """Section 3.2: '~40-50% even if group acknowledgements are
        employed'.  Our reconstruction floors at ~53% (see EXPERIMENTS.md);
        the qualitative claim — still significant — holds."""
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(
            sim, src, dst, 1024, ack_policy=GroupAck(16)
        )
        assert 0.40 <= result.overhead_fraction <= 0.60
