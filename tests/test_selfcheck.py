"""Tests for the ``python -m repro`` self-check and package surface."""

import repro
from repro.__main__ import main as selfcheck_main


def test_selfcheck_passes(capsys):
    assert selfcheck_main() == 0
    out = capsys.readouterr().out
    assert "All calibration pins reproduce the paper exactly." in out
    assert "[FAIL]" not in out


def test_version():
    assert repro.__version__


def test_public_surface_importable():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_quick_setups_are_independent():
    sim1, a1, b1, n1 = repro.quick_setup()
    sim2, a2, b2, n2 = repro.quick_setup()
    assert sim1 is not sim2 and n1 is not n2
    a1.processor.reg_ops(5)
    assert a2.processor.costs.total == 0
