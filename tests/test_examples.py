"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them honest.
Each is loaded from its file and its ``main()`` run with stdout captured.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = sorted(
    name[:-3]
    for name in os.listdir(EXAMPLES_DIR)
    if name.endswith(".py")
)


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_example_inventory():
    """The README promises these examples; keep the set in sync."""
    assert set(EXAMPLES) >= {
        "quickstart",
        "stream_channel",
        "fault_tolerance",
        "network_design_tradeoff",
        "cluster_workload",
        "parallel_program",
        "eager_vs_rendezvous",
    }


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
    assert "Traceback" not in out
