"""Tests for the collective operations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import Cluster, barrier, broadcast, gather, reduce_sum
from repro.collectives.broadcast import _children
from repro.collectives.reduce import _expected_children, _parent
from repro.network.cm5 import CM5Network
from repro.network.cr import CRNetwork
from repro.sim.engine import Simulator


def make_cluster(n, network="cm5"):
    sim = Simulator()
    net = CM5Network(sim) if network == "cm5" else CRNetwork(sim)
    return Cluster(sim, net, n)


class TestTreeStructure:
    def test_children_of_root(self):
        assert _children(0, 8) == [4, 2, 1]
        assert _children(0, 5) == [4, 2, 1]

    def test_children_parent_inverse(self):
        n = 16
        for rel in range(n):
            for child in _children(rel, n):
                assert _parent(child) == rel

    def test_every_nonroot_has_exactly_one_parent(self):
        n = 13
        seen = {}
        for rel in range(n):
            for child in _children(rel, n):
                assert child not in seen
                seen[child] = rel
        assert sorted(seen) == list(range(1, n))

    def test_expected_children_consistent(self):
        n = 11
        for rel in range(n):
            assert _expected_children(rel, n) == len(_children(rel, n))


class TestBarrier:
    @pytest.mark.parametrize("network", ["cm5", "cr"])
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 16, 17])
    def test_barrier_completes(self, n, network):
        cluster = make_cluster(n, network)
        handle = barrier(cluster)
        cluster.run()
        assert handle.completed
        assert handle.completed_ranks == n

    def test_two_sequential_barriers(self):
        cluster = make_cluster(8)
        first = barrier(cluster)
        cluster.run()
        assert first.completed
        second = barrier(cluster)
        cluster.run()
        assert second.completed

    def test_barrier_cost_scales_n_log_n(self):
        costs = {}
        for n in (4, 16):
            cluster = make_cluster(n)
            barrier(cluster)
            cluster.run()
            costs[n] = cluster.total_cost()
        # messages: n*log2(n); 16*4 = 64 vs 4*2 = 8 -> 8x cost.
        assert costs[16] == pytest.approx(costs[4] * 8, rel=0.2)


class TestBroadcast:
    @pytest.mark.parametrize("network", ["cm5", "cr"])
    @pytest.mark.parametrize("n,root", [(2, 0), (5, 3), (8, 0), (13, 7)])
    def test_everyone_gets_the_block(self, n, root, network):
        cluster = make_cluster(n, network)
        data = list(range(100, 132))
        handle = broadcast(cluster, root=root, data=data)
        cluster.run()
        assert handle.completed
        assert all(handle.data_at(rank) == data for rank in range(n))

    def test_cost_is_n_minus_1_transfers(self):
        from repro.am.costs import CmamCosts
        from repro.analysis.formulas import CostFormulas

        n, words = 8, 64
        cluster = make_cluster(n)
        broadcast(cluster, root=0, data=list(range(words)))
        cluster.run()
        per_transfer = CostFormulas(CmamCosts(4)).finite_sequence(words).total
        assert cluster.total_cost() == per_transfer * (n - 1)

    def test_cr_broadcast_cheaper(self):
        totals = {}
        for network in ("cm5", "cr"):
            cluster = make_cluster(8, network)
            broadcast(cluster, root=0, data=list(range(64)))
            cluster.run()
            totals[network] = cluster.total_cost()
        assert totals["cr"] < totals["cm5"]

    def test_validation(self):
        cluster = make_cluster(4)
        with pytest.raises(ValueError):
            broadcast(cluster, root=9, data=[1])
        with pytest.raises(ValueError):
            broadcast(cluster, root=0, data=[])


class TestReduce:
    @pytest.mark.parametrize("network", ["cm5", "cr"])
    @pytest.mark.parametrize("n,root", [(2, 0), (4, 1), (7, 0), (16, 5)])
    def test_sum_lands_at_root(self, n, root, network):
        cluster = make_cluster(n, network)
        contributions = [[(rank + 1) * 3, rank] for rank in range(n)]
        handle = reduce_sum(cluster, root=root, contributions=contributions)
        cluster.run()
        assert handle.completed
        assert handle.result == [
            sum((r + 1) * 3 for r in range(n)),
            sum(range(n)),
        ]
        assert handle.contributions_combined == n - 1

    def test_modular_arithmetic(self):
        cluster = make_cluster(2)
        handle = reduce_sum(
            cluster, root=0, contributions=[[0xFFFFFFFF], [2]]
        )
        cluster.run()
        assert handle.result == [1]  # wraps modulo 2^32

    def test_validation(self):
        cluster = make_cluster(4)
        with pytest.raises(ValueError):
            reduce_sum(cluster, root=0, contributions=[[1]] * 3)
        with pytest.raises(ValueError):
            reduce_sum(cluster, root=0, contributions=[[1], [1], [1, 2], [1]])

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(2, 12),
        width=st.integers(1, 16),
        seed=st.integers(0, 10_000),
    )
    def test_reduce_property(self, n, width, seed):
        import random

        rng = random.Random(seed)
        contributions = [
            [rng.randrange(1 << 16) for _ in range(width)] for _ in range(n)
        ]
        cluster = make_cluster(n)
        handle = reduce_sum(cluster, root=rng.randrange(n),
                            contributions=contributions)
        cluster.run()
        assert handle.completed
        expected = [
            sum(c[i] for c in contributions) & 0xFFFFFFFF for i in range(width)
        ]
        assert handle.result == expected


class TestGather:
    @pytest.mark.parametrize("network", ["cm5", "cr"])
    @pytest.mark.parametrize("n,root", [(2, 0), (5, 2), (9, 0)])
    def test_gather_assembles_in_rank_order(self, n, root, network):
        cluster = make_cluster(n, network)
        blocks = [[rank * 100 + i for i in range(4)] for rank in range(n)]
        handle = gather(cluster, root=root, blocks=blocks)
        cluster.run()
        assert handle.completed
        assert handle.assembled() == [w for b in blocks for w in b]

    def test_concurrent_inbound_transfers_kept_apart(self):
        """All N-1 senders transmit simultaneously; the root's segment /
        cursor tables must demultiplex them correctly."""
        n = 8
        cluster = make_cluster(n, "cr")
        blocks = [[rank] * 16 for rank in range(n)]
        handle = gather(cluster, root=0, blocks=blocks)
        cluster.run()
        for rank in range(n):
            assert handle.results[rank] == [rank] * 16

    def test_assembled_before_completion_raises(self):
        cluster = make_cluster(4)
        handle = gather(cluster, root=0,
                        blocks=[[1], [2], [3], [4]])
        with pytest.raises(RuntimeError):
            handle.assembled()
        cluster.run()
        assert handle.assembled() == [1, 2, 3, 4]

    def test_validation(self):
        cluster = make_cluster(3)
        with pytest.raises(ValueError):
            gather(cluster, root=0, blocks=[[1], [2]])
        with pytest.raises(ValueError):
            gather(cluster, root=0, blocks=[[1], [], [3]])
