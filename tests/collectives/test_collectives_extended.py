"""Tests for scatter, all-to-all, and all-reduce."""

import pytest

from repro.collectives import Cluster, allreduce_sum, alltoall, scatter
from repro.network.cm5 import CM5Network
from repro.network.cr import CRNetwork
from repro.sim.engine import Simulator


def make_cluster(n, network="cm5"):
    sim = Simulator()
    net = CM5Network(sim) if network == "cm5" else CRNetwork(sim)
    return Cluster(sim, net, n)


class TestScatter:
    @pytest.mark.parametrize("network", ["cm5", "cr"])
    @pytest.mark.parametrize("n,root", [(2, 0), (6, 2), (9, 8)])
    def test_each_rank_gets_its_block(self, n, root, network):
        cluster = make_cluster(n, network)
        blocks = [[rank * 10 + i for i in range(5)] for rank in range(n)]
        handle = scatter(cluster, root=root, blocks=blocks)
        cluster.run()
        assert handle.completed
        for rank in range(n):
            assert handle.received[rank] == blocks[rank]

    def test_validation(self):
        cluster = make_cluster(3)
        with pytest.raises(ValueError):
            scatter(cluster, root=0, blocks=[[1], [2]])
        with pytest.raises(ValueError):
            scatter(cluster, root=5, blocks=[[1], [2], [3]])
        with pytest.raises(ValueError):
            scatter(cluster, root=0, blocks=[[1], [], [3]])


class TestAllToAll:
    @pytest.mark.parametrize("network", ["cm5", "cr"])
    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_full_exchange(self, n, network):
        cluster = make_cluster(n, network)
        blocks = [
            [[src * 100 + dst, src, dst, 0] for dst in range(n)]
            for src in range(n)
        ]
        handle = alltoall(cluster, blocks)
        cluster.run()
        assert handle.completed
        for dst in range(n):
            for src in range(n):
                assert handle.received[dst][src] == blocks[src][dst]

    def test_each_source_chain_is_serialized(self):
        """Every source issues its transfers one at a time: the total
        instruction bill equals n*(n-1) single transfers exactly."""
        from repro.am.costs import CmamCosts
        from repro.analysis.formulas import CostFormulas

        n = 4
        cluster = make_cluster(n)
        blocks = [[[1, 2, 3, 4] for _dst in range(n)] for _src in range(n)]
        alltoall(cluster, blocks)
        cluster.run()
        per = CostFormulas(CmamCosts(4)).finite_sequence(4).total
        assert cluster.total_cost() == per * n * (n - 1)

    def test_validation(self):
        cluster = make_cluster(3)
        with pytest.raises(ValueError):
            alltoall(cluster, [[[1]] * 2] * 3)


class TestAllReduce:
    @pytest.mark.parametrize("network", ["cm5", "cr"])
    @pytest.mark.parametrize("n", [2, 7, 8])
    def test_everyone_gets_the_sum(self, n, network):
        cluster = make_cluster(n, network)
        contributions = [[rank + 1, rank * rank] for rank in range(n)]
        handle = allreduce_sum(cluster, contributions)
        cluster.run()
        assert handle.completed
        expected = [
            sum(r + 1 for r in range(n)),
            sum(r * r for r in range(n)),
        ]
        for rank in range(n):
            assert handle.result_at(rank) == expected

    def test_phases_sequence_correctly(self):
        """The broadcast must not begin before the reduction completes."""
        cluster = make_cluster(6)
        handle = allreduce_sum(cluster, [[1]] * 6)
        assert handle.broadcast_handle is None  # nothing ran yet
        cluster.run()
        assert handle.reduce_handle.completed
        assert handle.broadcast_handle.completed

    def test_incomplete_result_is_none(self):
        cluster = make_cluster(4)
        handle = allreduce_sum(cluster, [[1]] * 4)
        assert handle.result_at(0) is None
        cluster.run()
        assert handle.result_at(0) == [4]
