"""Tests for LogP parameter extraction."""

import pytest

from repro.am.costs import CmamCosts
from repro.analysis.logp import LogPParameters, extract_logp
from repro.arch.costmodel import CM5_CYCLE_MODEL, UNIT_COST_MODEL


class TestExtraction:
    def test_overheads_recover_table1(self):
        """The ping-pong measurement recovers the paper's 20/27 split."""
        params = extract_logp()
        assert params.o_send == 20.0
        assert params.o_recv == 27.0
        assert params.o == 23.5

    def test_latency_recovers_configured_value(self):
        for latency in (5.0, 10.0, 40.0):
            params = extract_logp(network_latency=latency, round_trips=8)
            assert params.latency == pytest.approx(latency)

    def test_round_trip_count_respected(self):
        params = extract_logp(round_trips=4)
        assert params.round_trips == 4

    def test_invalid_round_trips(self):
        with pytest.raises(ValueError):
            extract_logp(round_trips=0)

    def test_cycle_conversion(self):
        params = extract_logp(round_trips=2)
        unit = params.overhead_cycles(UNIT_COST_MODEL, CmamCosts())
        cm5 = params.overhead_cycles(CM5_CYCLE_MODEL, CmamCosts())
        assert unit == 23.5
        # dev accesses (5 on each path) cost 4 extra cycles each: +20.
        assert cm5 == 43.5

    def test_parameters_dataclass(self):
        params = LogPParameters(
            o_send=20, o_recv=27, latency=10.0, gap=0.5, round_trips=1
        )
        assert params.o == 23.5
