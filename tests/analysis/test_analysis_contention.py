"""Tests for the offered-load contention study."""

import pytest

from repro.analysis.contention import (
    load_sweep,
    measure_load_point,
    saturation_load,
)


class TestLoadPoints:
    def test_light_load_low_latency(self):
        point = measure_load_point("deterministic", 0.02, duration=150.0)
        assert point.delivered > 0
        assert point.mean_latency < 30.0
        assert point.ooo_fraction_mean == 0.0

    def test_deterministic_never_reorders_under_any_load(self):
        """FIFO backpressure: single-path routing preserves order even at
        saturation."""
        point = measure_load_point("deterministic", 0.15, duration=150.0)
        assert point.stalls > 0  # genuinely saturated
        assert point.ooo_fraction_mean == 0.0

    def test_adaptive_saturates_later(self):
        det = measure_load_point("deterministic", 0.1, duration=200.0)
        ada = measure_load_point("adaptive", 0.1, duration=200.0)
        assert ada.throughput > det.throughput
        assert ada.mean_latency < det.mean_latency

    def test_latency_grows_with_load(self):
        points = load_sweep(
            loads=(0.02, 0.1), policies=("deterministic",), duration=150.0
        )
        assert points[0].mean_latency < points[1].mean_latency

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            measure_load_point("psychic", 0.1)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            measure_load_point("adaptive", 0.0)

    def test_deterministic_given_seed(self):
        a = measure_load_point("adaptive", 0.05, duration=100.0, seed=3)
        b = measure_load_point("adaptive", 0.05, duration=100.0, seed=3)
        assert (a.delivered, a.mean_latency) == (b.delivered, b.mean_latency)


class TestSaturation:
    def test_deterministic_saturates_before_adaptive(self):
        det = saturation_load(
            "deterministic", latency_cap=100.0,
            loads=(0.02, 0.05, 0.1, 0.15), duration=150.0,
        )
        ada = saturation_load(
            "adaptive", latency_cap=100.0,
            loads=(0.02, 0.05, 0.1, 0.15), duration=150.0,
        )
        assert det is not None
        assert ada is None or ada > det

    def test_no_saturation_under_cap(self):
        result = saturation_load(
            "adaptive", latency_cap=1e9, loads=(0.02,), duration=100.0
        )
        assert result is None
