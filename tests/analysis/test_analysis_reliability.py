"""Tests for the fault-rate study."""

import pytest

from repro.analysis.reliability import (
    expected_retransmissions,
    expected_transmissions,
    fault_rate_sweep,
)


class TestAnalytic:
    def test_fault_free_is_one_transmission(self):
        assert expected_transmissions(0.0) == 1.0
        assert expected_retransmissions(0.0, 100) == 0.0

    def test_half_loss_doubles_transmissions(self):
        assert expected_transmissions(0.5) == 2.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            expected_transmissions(1.0)
        with pytest.raises(ValueError):
            expected_transmissions(-0.1)


class TestMeasuredSweep:
    def test_cost_grows_with_fault_rate(self):
        points = fault_rate_sweep(
            rates=(0.0, 0.05, 0.15), message_words=128, replications=4
        )
        totals = [p.total.mean for p in points]
        assert totals == sorted(totals)
        assert points[0].retransmissions.mean == 0.0
        assert points[-1].retransmissions.mean > 0.0

    def test_fault_free_point_is_deterministic_and_calibrated(self):
        from repro.am.costs import CmamCosts
        from repro.analysis.formulas import CostFormulas

        points = fault_rate_sweep(rates=(0.0,), message_words=64,
                                  replications=3)
        point = points[0]
        assert point.total.half_width == 0.0
        expected = CostFormulas(CmamCosts(4)).indefinite_sequence(
            64, ooo_count=0
        ).total
        assert point.total.mean == expected

    def test_retransmissions_near_first_order_bound(self):
        """Measured retransmissions sit at or above the data-path-only
        analytic expectation (ack losses add more), same order of
        magnitude."""
        eps = 0.1
        packets = 64
        points = fault_rate_sweep(rates=(eps,), message_words=packets * 4,
                                  replications=6)
        bound = expected_retransmissions(eps, packets)
        measured = points[0].retransmissions.mean
        assert measured >= bound * 0.5
        assert measured <= bound * 4.0

    def test_every_replication_recovers_all_data(self):
        # fault_rate_sweep raises if any replication fails to recover.
        points = fault_rate_sweep(rates=(0.2,), message_words=64,
                                  replications=3)
        assert points[0].duplicates.mean >= 0.0
