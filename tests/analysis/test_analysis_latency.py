"""Tests for the latency study (Section 5's cost-vs-latency discussion)."""

import pytest

from repro.analysis.latency import handshake_penalty, latency_study


class TestLatencyStudy:
    def test_cmam_pays_three_crossings_for_data(self):
        """Request + reply + data: the first data word cannot complete
        before three network crossings; sender release waits a fourth."""
        points = latency_study(sizes=(16,))
        cmam = next(p for p in points if p.substrate == "cmam")
        assert cmam.crossings == pytest.approx(3.0)
        assert cmam.sender_released_at == pytest.approx(4 * cmam.network_latency)

    def test_cr_streams_in_one_crossing(self):
        points = latency_study(sizes=(16,))
        cr = next(p for p in points if p.substrate == "cr")
        assert cr.crossings == pytest.approx(1.0)
        assert cr.sender_released_at == 0.0  # no source buffering to free

    def test_handshake_penalty_constant_in_size(self):
        points = latency_study(sizes=(16, 256, 1024))
        assert handshake_penalty(points) == pytest.approx(3.0)

    def test_latency_scales_with_network_latency(self):
        fast = latency_study(sizes=(16,), network_latency=5.0)
        slow = latency_study(sizes=(16,), network_latency=50.0)
        cmam_fast = next(p for p in fast if p.substrate == "cmam")
        cmam_slow = next(p for p in slow if p.substrate == "cmam")
        assert cmam_slow.data_complete_at == 10 * cmam_fast.data_complete_at

    def test_instructions_match_calibration(self):
        """The latency runs reuse the calibrated protocols: counts agree
        with the paper."""
        points = latency_study(sizes=(1024,))
        cmam = next(p for p in points if p.substrate == "cmam")
        cr = next(p for p in points if p.substrate == "cr")
        assert cmam.total_instructions == 11737
        assert cr.total_instructions == 10009

    def test_empty_penalty(self):
        assert handshake_penalty([]) == 0.0
