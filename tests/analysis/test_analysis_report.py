"""Tests for ASCII table/figure rendering."""

from repro import InOrderDelivery, quick_setup, run_finite_sequence
from repro.analysis.breakdown import breakdown_from_result
from repro.analysis.report import (
    render_bar_chart,
    render_class_table,
    render_cost_table,
    render_series,
    render_table,
)


def breakdown():
    sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
    return breakdown_from_result(run_finite_sequence(sim, src, dst, 16))


class TestGenericTable:
    def test_aligned_box(self):
        text = render_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert lines[0].startswith("+") and lines[0].endswith("+")

    def test_cells_present(self):
        text = render_table(["h1", "h2"], [["x", "y"]])
        assert "h1" in text and "x" in text and "y" in text


class TestCostTable:
    def test_contains_feature_rows_and_totals(self):
        text = render_cost_table(breakdown())
        for label in ("Base Cost", "Buffer Mgmt.", "In-order Del.", "Fault-toler."):
            assert label in text
        assert "397" in text
        assert "Paper Total" in text

    def test_without_paper_columns(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        from repro import run_finite_sequence as run

        result = run(sim, src, dst, 16)
        bd = breakdown_from_result(result, with_paper=False)
        text = render_cost_table(bd)
        assert "Paper" not in text


class TestClassTable:
    def test_reg_mem_dev_columns(self):
        text = render_class_table(breakdown())
        for header in ("src reg", "src mem", "src dev", "dst reg"):
            assert header in text
        assert "128" in text and "168" in text  # Table 3 totals


class TestBarChart:
    def test_bars_scale(self):
        text = render_bar_chart(
            [("group", {"big": 100.0, "small": 10.0})], width=20
        )
        lines = [l for l in text.splitlines() if "#" in l]
        big_bar = next(l for l in lines if "big" in l)
        small_bar = next(l for l in lines if "small" in l)
        assert big_bar.count("#") > small_bar.count("#")

    def test_zero_value_no_bar(self):
        text = render_bar_chart([("g", {"none": 0.0})])
        line = next(l for l in text.splitlines() if "none" in l)
        assert "#" not in line


class TestSeries:
    def test_xy_table(self):
        text = render_series(
            "title", "n",
            {"a": [(4, 0.5), (8, 0.25)], "b": [(4, 0.1)]},
        )
        assert "title" in text
        assert "50.0%" in text and "25.0%" in text
        assert "-" in text  # missing b at x=8
