"""Tests for replication statistics and the amortization study."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.amortization import (
    amortization_curve,
    asymptotic_per_word,
    finite_vs_stream_crossover,
    per_word_table,
)
from repro.analysis.replication import (
    MetricSummary,
    replicate,
    summarize,
    t_critical_95,
)


class TestSummarize:
    def test_known_values(self):
        summary = summarize("x", [2.0, 4.0, 6.0])
        assert summary.mean == pytest.approx(4.0)
        assert summary.stdev == pytest.approx(2.0)
        assert summary.half_width == pytest.approx(4.303 * 2.0 / 3**0.5)
        assert summary.contains(4.0)
        assert not summary.contains(100.0)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            summarize("x", [1.0])

    def test_t_table(self):
        assert t_critical_95(1) == 12.706
        assert t_critical_95(100) == 1.96
        with pytest.raises(ValueError):
            t_critical_95(0)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=40))
    def test_interval_contains_mean(self, samples):
        summary = summarize("x", samples)
        assert summary.contains(summary.mean)
        assert summary.half_width >= 0


class TestReplicate:
    def test_deterministic_experiment_zero_width(self):
        results = replicate(lambda seed: {"value": 7.0}, seeds=range(5))
        assert results["value"].mean == 7.0
        assert results["value"].half_width == 0.0

    def test_stochastic_experiment(self):
        def experiment(seed):
            rng = random.Random(seed)
            return {"ooo": rng.random()}

        results = replicate(experiment, seeds=range(20))
        assert 0.2 < results["ooo"].mean < 0.8
        assert results["ooo"].half_width > 0

    def test_real_stream_replication(self):
        """Random-reorder streams: ooo fraction across seeds, with CI."""
        from repro import quick_setup, run_indefinite_sequence
        from repro.network.delivery import RandomReorder

        def experiment(seed):
            rng = random.Random(seed)
            sim, src, dst, _net = quick_setup(
                delivery_factory=lambda: RandomReorder(rng, hold_prob=0.5)
            )
            result = run_indefinite_sequence(sim, src, dst, 256)
            return {
                "ooo_fraction": result.detail["ooo_arrivals"] / 64,
                "total": result.total,
            }

        results = replicate(experiment, seeds=range(8))
        assert 0.0 < results["ooo_fraction"].mean < 1.0
        assert results["total"].mean > 0

    def test_inconsistent_metrics_rejected(self):
        calls = [0]

        def experiment(seed):
            calls[0] += 1
            return {"a": 1.0} if calls[0] == 1 else {"b": 1.0}

        with pytest.raises(ValueError):
            replicate(experiment, seeds=range(2))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 1.0}, seeds=[])


class TestAmortization:
    def test_crossover_at_16_words(self):
        """The handshake pays for itself from 16 words on — which is why
        the paper's 16-word row is the interesting one."""
        assert finite_vs_stream_crossover() == 16

    def test_asymptotes_ordered(self):
        assert asymptotic_per_word("cr-indefinite-sequence") < (
            asymptotic_per_word("cr-finite-sequence")
        ) < asymptotic_per_word("finite-sequence") < (
            asymptotic_per_word("indefinite-sequence")
        )

    def test_finite_per_word_monotone_decreasing(self):
        table = per_word_table(amortization_curve())
        curve = [v for _w, v in sorted(table["finite-sequence"].items())]
        assert curve == sorted(curve, reverse=True)

    def test_no_crossover_when_stream_padded_free(self):
        assert finite_vs_stream_crossover(limit=8) is None
