"""Tests for the Figure 8 overhead sweeps."""

import pytest

from repro.analysis.overhead import (
    FIG8_MESSAGE_WORDS,
    FIG8_PACKET_SIZES,
    group_ack_sweep,
    packet_size_sweep,
    reorder_fraction_sweep,
)


class TestPacketSizeSweep:
    def test_covers_all_sizes_and_protocols(self):
        points = packet_size_sweep()
        assert len(points) == len(FIG8_PACKET_SIZES) * 2
        assert {p.packet_size for p in points} == set(FIG8_PACKET_SIZES)

    def test_finite_overhead_band(self):
        """The paper quotes 9-11 % (our reconstruction spans to ~12.6 % at
        n=4); the conclusion — lower than indefinite but persistent — holds."""
        fin = [p for p in packet_size_sweep() if p.protocol == "finite-sequence"]
        assert all(0.09 <= p.overhead_fraction <= 0.13 for p in fin)

    def test_indefinite_overhead_remains_significant(self):
        ind = [p for p in packet_size_sweep() if p.protocol == "indefinite-sequence"]
        assert all(p.overhead_fraction > 0.30 for p in ind)
        at4 = next(p for p in ind if p.packet_size == 4)
        assert at4.overhead_fraction == pytest.approx(0.70, abs=0.02)

    def test_overhead_monotone_decreasing_in_n(self):
        for protocol in ("finite-sequence", "indefinite-sequence"):
            fracs = [
                p.overhead_fraction
                for p in packet_size_sweep(protocols=(protocol,))
            ]
            assert fracs == sorted(fracs, reverse=True)

    def test_packets_column(self):
        points = packet_size_sweep(protocols=("finite-sequence",))
        by_n = {p.packet_size: p.packets for p in points}
        assert by_n[4] == 256 and by_n[128] == 8

    def test_cr_protocols_sweepable(self):
        points = packet_size_sweep(protocols=("cr-finite-sequence",))
        assert all(p.overhead_fraction < 0.01 for p in points)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            packet_size_sweep(protocols=("bogus",))


class TestReorderFractionSweep:
    def test_overhead_grows_with_reordering(self):
        points = reorder_fraction_sweep()
        fracs = [p.overhead_fraction for p in points]
        assert fracs == sorted(fracs)

    def test_zero_fraction_still_has_overhead(self):
        """Even a perfectly ordered arrival stream pays sequencing, source
        buffering and acks — ordering *machinery* isn't free just because
        it goes unused."""
        point = reorder_fraction_sweep(fractions=(0.0,))[0]
        assert point.overhead_fraction > 0.5


class TestGroupAckSweep:
    def test_overhead_decreases_with_group_size(self):
        points = group_ack_sweep()
        fracs = [p.overhead_fraction for p in points]
        assert fracs == sorted(fracs, reverse=True)

    def test_remains_significant_even_at_g32(self):
        points = group_ack_sweep(groups=(32,))
        assert points[0].overhead_fraction > 0.40
