"""Unit tests for per-packet lifecycle reconstruction (tracereport)."""

from repro.arch.attribution import Feature
from repro.analysis.tracereport import (
    PacketLifecycle,
    control_retransmits,
    crosscheck_features,
    lifecycle_spans,
    lifecycle_stats,
    reconstruct_lifecycles,
    render_packet_table,
    render_trace_report,
)
from repro.runtime.tracing import EventType, TraceEvent, Tracer

LABEL = "finite/cm5"


def ev(ts_ns, etype, endpoint="src", channel=1, seq=0, aux=-1,
       attempt=0, kind="", feature=None, label=LABEL):
    return TraceEvent(ts_ns=ts_ns, etype=etype, label=label,
                      endpoint=endpoint, channel=channel, seq=seq, aux=aux,
                      attempt=attempt, kind=kind, feature=feature)


def happy_path_events(seq=3, aux=0):
    """One packet's full journey: send, recv, deliver, ack both ways."""
    return [
        ev(1000, EventType.SEND, "src", seq=seq, aux=aux, kind="DATA"),
        ev(3000, EventType.RECV, "dst", seq=seq, aux=aux, kind="DATA"),
        ev(3500, EventType.DELIVER, "dst", seq=seq, aux=max(aux, 0)),
        ev(4000, EventType.ACK_TX, "dst", seq=seq, kind="ACK"),
        ev(6000, EventType.ACK_RX, "src", seq=seq, kind="ACK"),
    ]


class TestReconstruction:
    def test_happy_path_packet_is_complete(self):
        lifecycles = reconstruct_lifecycles(happy_path_events())
        assert len(lifecycles) == 1
        pkt = lifecycles[0]
        assert pkt.complete
        assert not pkt.gave_up
        assert pkt.key == (LABEL, 1, 3, 0)
        assert pkt.src_endpoint == "src"
        assert pkt.dst_endpoint == "dst"
        assert pkt.wire_ns == 2000
        assert pkt.queue_ns == 500
        assert pkt.rtt_ns == 5000
        assert pkt.ack_tx_ns == 4000

    def test_events_are_sorted_before_stitching(self):
        events = happy_path_events()
        lifecycles = reconstruct_lifecycles(list(reversed(events)))
        assert lifecycles[0].complete
        assert lifecycles[0].rtt_ns == 5000

    def test_duplicate_arrivals_keep_first_timestamp(self):
        events = happy_path_events() + [
            ev(9000, EventType.RECV, "dst", seq=3, aux=0, kind="DATA"),
            ev(9100, EventType.DELIVER, "dst", seq=3, aux=0),
        ]
        pkt = reconstruct_lifecycles(events)[0]
        assert pkt.recv_ns == 3000
        assert pkt.deliver_ns == 3500

    def test_retransmissions_accumulate(self):
        events = happy_path_events() + [
            ev(1500, EventType.RETRANSMIT, "src", seq=3, aux=0,
               attempt=1, kind=""),
            ev(2500, EventType.RETRANSMIT, "src", seq=3, aux=0,
               attempt=2, kind=""),
        ]
        pkt = reconstruct_lifecycles(events)[0]
        assert pkt.retransmits == 2
        assert pkt.attempts == 2
        assert pkt.retransmit_ns == [1500, 2500]

    def test_control_plane_retransmits_stay_out_of_lifecycles(self):
        events = happy_path_events() + [
            ev(1200, EventType.RETRANSMIT, "src", seq=3, aux=0,
               attempt=1, kind="alloc"),
            ev(1300, EventType.RETRANSMIT, "src", seq=3, aux=0,
               attempt=1, kind="dealloc"),
        ]
        lifecycles = reconstruct_lifecycles(events)
        assert lifecycles[0].retransmits == 0
        assert control_retransmits(events) == 2

    def test_give_up_marks_the_packet(self):
        events = [
            ev(1000, EventType.SEND, "src", seq=5, aux=0, kind="DATA"),
            ev(8000, EventType.GIVE_UP, "src", seq=5, aux=0, kind=""),
        ]
        pkt = reconstruct_lifecycles(events)[0]
        assert pkt.gave_up
        assert not pkt.complete
        assert pkt.rtt_ns is None

    def test_park_dwell(self):
        events = happy_path_events() + [
            ev(3100, EventType.PARK, "dst", seq=3, aux=0),
            ev(3400, EventType.UNPARK, "dst", seq=3, aux=0),
        ]
        pkt = reconstruct_lifecycles(events)[0]
        assert pkt.park_dwell_ns == 300

    def test_bulk_offsets_are_distinct_packets(self):
        events = (happy_path_events(seq=7, aux=0)
                  + [ev(1100, EventType.SEND, "src", seq=7, aux=16,
                        kind="DATA")])
        lifecycles = reconstruct_lifecycles(events)
        assert len(lifecycles) == 2
        keys = {pkt.key for pkt in lifecycles}
        assert (LABEL, 1, 7, 0) in keys
        assert (LABEL, 1, 7, 16) in keys

    def test_unsent_stragglers_sort_last(self):
        events = [
            ev(500, EventType.RECV, "dst", seq=9, aux=0, kind="DATA"),
            ev(1000, EventType.SEND, "src", seq=2, aux=0, kind="DATA"),
        ]
        lifecycles = reconstruct_lifecycles(events)
        assert lifecycles[0].seq == 2       # sent packet first
        assert lifecycles[1].send_ns is None


class TestAckCoverage:
    def test_cum_ack_covers_lower_sequences_only(self):
        events = [
            ev(1000, EventType.SEND, "src", seq=1, aux=0, kind="DATA"),
            ev(1100, EventType.SEND, "src", seq=2, aux=0, kind="DATA"),
            ev(5000, EventType.ACK_RX, "src", seq=2, kind="CUM_ACK"),
        ]
        by_seq = {p.seq: p for p in reconstruct_lifecycles(events)}
        assert by_seq[1].ack_rx_ns == 5000   # 1 < 2: covered
        assert by_seq[2].ack_rx_ns is None   # 2 < 2 is false

    def test_final_ack_covers_offsets_below_high_water(self):
        events = [
            ev(1000, EventType.SEND, "src", seq=4, aux=0, kind="DATA"),
            ev(1100, EventType.SEND, "src", seq=4, aux=16, kind="DATA"),
            ev(1200, EventType.SEND, "src", seq=4, aux=32, kind="DATA"),
            ev(5000, EventType.ACK_RX, "src", seq=4, aux=32,
               kind="FINAL_ACK"),
        ]
        by_offset = {p.offset: p for p in reconstruct_lifecycles(events)}
        assert by_offset[0].ack_rx_ns == 5000
        assert by_offset[16].ack_rx_ns == 5000
        assert by_offset[32].ack_rx_ns is None  # at the mark, not below

    def test_ack_before_send_is_never_matched(self):
        events = [
            ev(5000, EventType.SEND, "src", seq=1, aux=0, kind="DATA"),
            ev(1000, EventType.ACK_RX, "src", seq=1, kind="ACK"),
        ]
        assert reconstruct_lifecycles(events)[0].ack_rx_ns is None

    def test_ack_from_another_channel_is_ignored(self):
        events = happy_path_events() + [
            ev(5000, EventType.ACK_RX, "src", channel=2, seq=3, kind="ACK"),
        ]
        pkt = reconstruct_lifecycles(events)[0]
        assert pkt.ack_rx_ns == 6000  # the channel-1 ack, not the stray


class TestStatsAndRendering:
    def _lifecycles(self):
        events = (happy_path_events(seq=1)
                  + [ev(2000 + t, EventType.SEND, "src", seq=2, aux=0,
                        kind="DATA") for t in (0,)]
                  + [ev(2500, EventType.RETRANSMIT, "src", seq=2, aux=0,
                        attempt=1, kind="")])
        return reconstruct_lifecycles(events)

    def test_lifecycle_stats_buckets_by_label(self):
        stats = lifecycle_stats(self._lifecycles())
        assert set(stats) == {LABEL}
        cell = stats[LABEL]
        assert cell.packets == 2
        assert cell.complete == 1
        assert cell.retransmitted == 1
        assert cell.rtt.count == 1
        assert cell.rtt.total_ns == 5000
        assert cell.to_dict()["wire"]["count"] == 1

    def test_render_packet_table_truncates(self):
        lifecycles = [
            PacketLifecycle(label=LABEL, channel=1, seq=i, offset=0,
                            send_ns=i * 100)
            for i in range(30)
        ]
        out = render_packet_table(lifecycles, limit=5)
        assert "25 more packets not shown" in out
        assert "partial" in out

    def test_render_trace_report_smoke(self):
        out = render_trace_report(self._lifecycles())
        assert LABEL in out
        assert "2 packets, 1 complete" in out
        assert "rtt (send->ack)" in out
        assert "ch1 1+0" in out

    def test_render_trace_report_empty(self):
        assert render_trace_report([]) == ""

    def test_ring_wrap_is_surfaced_in_stats_and_report(self):
        # A tiny ring loses the oldest legs; the overwritten count must
        # flow into every stats cell and the rendered report must warn.
        tracer = Tracer(capacity=8, label=LABEL)
        for i in range(12):
            tracer.emit(EventType.SEND, "src", channel=1, seq=i,
                        aux=0, kind="DATA")
        assert tracer.overwritten == 4
        lifecycles = reconstruct_lifecycles(tracer.events())
        stats = lifecycle_stats(lifecycles, overwritten=tracer.overwritten)
        assert all(cell.truncated_events == 4 for cell in stats.values())
        assert stats[LABEL].to_dict()["truncated_events"] == 4
        report = render_trace_report(lifecycles,
                                     overwritten=tracer.overwritten)
        assert "WARNING: trace ring wrapped" in report
        assert "4 oldest event(s) overwritten" in report
        assert "--trace-capacity" in report

    def test_no_wrap_means_no_warning(self):
        report = render_trace_report(self._lifecycles(), overwritten=0)
        assert "WARNING" not in report


class TestCrosscheck:
    def test_agreement_is_silent(self):
        totals = {Feature.BASE: 1000, Feature.USER: 500}
        assert crosscheck_features(totals, dict(totals)) == []

    def test_disagreement_is_named(self):
        buckets = {Feature.BASE: 1000, Feature.IN_ORDER: 1000}
        hists = {Feature.BASE: 1000, Feature.IN_ORDER: 500}
        problems = crosscheck_features(hists, buckets)
        assert len(problems) == 1
        assert "in_order" in problems[0]

    def test_negligible_buckets_are_skipped(self):
        buckets = {Feature.BASE: 1_000_000, Feature.FAULT_TOLERANCE: 5}
        hists = {Feature.BASE: 1_000_000, Feature.FAULT_TOLERANCE: 0}
        assert crosscheck_features(hists, buckets) == []

    def test_tolerance_is_respected(self):
        buckets = {Feature.BASE: 1000}
        assert crosscheck_features({Feature.BASE: 920}, buckets) == []
        assert crosscheck_features({Feature.BASE: 880}, buckets,
                                   tolerance=0.10) != []

    def test_exactly_at_tolerance_is_not_a_problem(self):
        # The gate is strictly greater-than: a 10.0% error at the
        # default 10% tolerance passes, in either direction.
        buckets = {Feature.BASE: 1000}
        assert crosscheck_features({Feature.BASE: 900}, buckets) == []
        assert crosscheck_features({Feature.BASE: 1100}, buckets) == []
        # One nanosecond past the boundary trips it.
        assert crosscheck_features({Feature.BASE: 899}, buckets) != []
        assert crosscheck_features({Feature.BASE: 1101}, buckets) != []


class TestSpans:
    def test_span_families_and_tracks(self):
        events = happy_path_events() + [
            ev(3100, EventType.PARK, "dst", seq=3, aux=0),
            ev(3400, EventType.UNPARK, "dst", seq=3, aux=0),
        ]
        spans = lifecycle_spans(reconstruct_lifecycles(events))
        by_name = {s["name"]: s for s in spans}
        assert set(by_name) == {
            "rtt ch1 seq 3+0", "deliver ch1 seq 3+0", "parked ch1 seq 3+0",
        }
        rtt = by_name["rtt ch1 seq 3+0"]
        assert rtt["track"] == f"{LABEL}:src"
        assert rtt["start_ns"] == 1000
        assert rtt["dur_ns"] == 5000
        assert by_name["deliver ch1 seq 3+0"]["track"] == f"{LABEL}:dst"
        assert by_name["parked ch1 seq 3+0"]["dur_ns"] == 300
        assert rtt["args"]["seq"] == 3

    def test_incomplete_packets_yield_no_spans(self):
        events = [ev(1000, EventType.SEND, "src", seq=1, aux=0, kind="DATA")]
        assert lifecycle_spans(reconstruct_lifecycles(events)) == []
