"""Tests for the ASCII plotter."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.asciiplot import GLYPHS, plot_series


class TestPlotSeries:
    def test_renders_all_series_glyphs(self):
        text = plot_series({
            "a": [(1, 1.0), (2, 2.0)],
            "b": [(1, 2.0), (2, 1.0)],
        })
        assert "o" in text and "x" in text
        assert "o=a" in text and "x=b" in text

    def test_extremes_on_axis_labels(self):
        text = plot_series({"s": [(0, 0.0), (10, 5.0)]}, y_format="{:.1f}")
        assert "5.0" in text and "0.0" in text
        assert "10" in text

    def test_monotone_series_renders_monotone(self):
        """Higher y lands on an earlier (higher) row as x advances."""
        text = plot_series({"s": [(1, 1.0), (2, 2.0), (3, 3.0)]},
                           width=30, height=9)
        marks = []
        for row_index, line in enumerate(text.splitlines()):
            if "|" not in line:
                continue
            plot_area = line.split("|", 1)[1]
            for col_index, char in enumerate(plot_area):
                if char == "o":
                    marks.append((col_index, row_index))
        marks.sort()
        rows_by_x = [row for _col, row in marks]
        assert len(marks) == 3
        assert rows_by_x == sorted(rows_by_x, reverse=True)

    def test_log_x(self):
        text = plot_series({"s": [(4, 1.0), (128, 2.0)]}, log_x=True)
        assert "[log scale]" in text

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            plot_series({"s": [(0, 1.0)]}, log_x=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            plot_series({"s": []})

    def test_single_point(self):
        text = plot_series({"s": [(5, 5.0)]})
        assert "o" in text

    @given(
        pts=st.lists(
            st.tuples(st.floats(0.1, 1e3), st.floats(-1e3, 1e3)),
            min_size=1, max_size=50,
        ),
        width=st.integers(10, 80),
        height=st.integers(4, 30),
    )
    def test_never_crashes_and_stays_rectangular(self, pts, width, height):
        text = plot_series({"s": pts}, width=width, height=height)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == height
        assert all(len(l) == len(plot_lines[0]) for l in plot_lines)
