"""Tests for the weighted cycle analyses."""

import pytest

from repro import InOrderDelivery, quick_setup, run_finite_sequence
from repro.analysis.cycles import cycle_breakdown, dev_weight_study
from repro.arch.attribution import Feature
from repro.arch.costmodel import CM5_CYCLE_MODEL, UNIT_COST_MODEL
from repro.arch.counters import CostMatrix
from repro.arch.isa import mix


def measured():
    sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
    return run_finite_sequence(sim, src, dst, 16)


class TestCycleBreakdown:
    def test_unit_model_equals_instruction_counts(self):
        result = measured()
        breakdown = cycle_breakdown(result.src_costs, UNIT_COST_MODEL)
        assert breakdown.total == result.src_costs.total

    def test_cm5_model_weights_dev(self):
        result = measured()
        breakdown = cycle_breakdown(result.src_costs, CM5_CYCLE_MODEL)
        # src = (128, 10, 35) -> 128 + 10 + 175
        assert breakdown.total == 313.0

    def test_overhead_fraction(self):
        matrix = CostMatrix({
            Feature.BASE: mix(reg=60),
            Feature.IN_ORDER: mix(reg=40),
        })
        breakdown = cycle_breakdown(matrix)
        assert breakdown.overhead_fraction == pytest.approx(0.4)

    def test_user_feature_not_in_overhead(self):
        matrix = CostMatrix({
            Feature.BASE: mix(reg=50),
            Feature.USER: mix(reg=50),
        })
        breakdown = cycle_breakdown(matrix)
        assert breakdown.overhead == 0.0


class TestDevWeightStudy:
    def test_cheaper_ni_raises_overhead_share(self):
        """Section 5's paradox: improved (cheaper) NI access makes protocol
        overhead a *larger* share of the cycles."""
        result = measured()
        points = dev_weight_study(
            result.src_costs, result.dst_costs, weights=(20.0, 5.0, 1.0)
        )
        fracs = [p.overhead_fraction for p in points]
        assert fracs == sorted(fracs)  # overhead share rises as dev gets cheap

    def test_total_cycles_monotone_in_weight(self):
        result = measured()
        points = dev_weight_study(
            result.src_costs, result.dst_costs, weights=(1.0, 5.0, 10.0)
        )
        totals = [p.total_cycles for p in points]
        assert totals == sorted(totals)
