"""Tests for feature breakdowns and the published-values comparison."""

import pytest

from repro import InOrderDelivery, quick_setup, run_finite_sequence
from repro.analysis.breakdown import FeatureBreakdown, breakdown_from_result
from repro.arch.attribution import Feature
from repro.arch.counters import CostMatrix
from repro.arch.isa import mix


def measured_16w():
    sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
    return run_finite_sequence(sim, src, dst, 16)


class TestBreakdown:
    def test_from_result_matches_paper(self):
        breakdown = breakdown_from_result(measured_16w())
        assert breakdown.matches_paper()
        assert breakdown.src_total == 173
        assert breakdown.dst_total == 224
        assert breakdown.total == 397

    def test_rows_ordered_like_the_paper(self):
        breakdown = breakdown_from_result(measured_16w())
        assert [row.feature for row in breakdown.rows] == [
            Feature.BASE, Feature.BUFFER_MGMT, Feature.IN_ORDER,
            Feature.FAULT_TOLERANCE,
        ]

    def test_overhead_aggregates(self):
        breakdown = breakdown_from_result(measured_16w())
        assert breakdown.overhead_total == 397 - 181
        assert breakdown.overhead_fraction == pytest.approx((397 - 181) / 397)

    def test_paper_columns_populated(self):
        breakdown = breakdown_from_result(measured_16w())
        base = breakdown.row(Feature.BASE)
        assert (base.paper_src, base.paper_dst, base.paper_total) == (91, 90, 181)

    def test_without_paper(self):
        breakdown = breakdown_from_result(measured_16w(), with_paper=False)
        assert all(row.paper_src is None for row in breakdown.rows)
        assert breakdown.matches_paper()  # vacuously

    def test_mismatch_detected(self):
        src = CostMatrix({Feature.BASE: mix(reg=1)})
        dst = CostMatrix({Feature.BASE: mix(reg=1)})
        breakdown = FeatureBreakdown.build("finite-sequence", 16, src, dst)
        assert not breakdown.matches_paper()

    def test_row_lookup_missing(self):
        breakdown = breakdown_from_result(measured_16w())
        with pytest.raises(KeyError):
            breakdown.row(Feature.USER)


class TestPublishedConsistency:
    """The transcribed paper tables must be internally consistent."""

    def test_table2_feature_rows_sum_to_totals(self):
        from repro.analysis import published

        for (protocol, words), (src, dst, total) in published.TABLE2_TOTALS.items():
            src_sum = sum(
                published.TABLE2[(protocol, words, f)][0]
                for f in (Feature.BASE, Feature.BUFFER_MGMT, Feature.IN_ORDER,
                          Feature.FAULT_TOLERANCE)
            )
            dst_sum = sum(
                published.TABLE2[(protocol, words, f)][1]
                for f in (Feature.BASE, Feature.BUFFER_MGMT, Feature.IN_ORDER,
                          Feature.FAULT_TOLERANCE)
            )
            assert (src_sum, dst_sum) == (src, dst)
            assert src + dst == total

    def test_table3_cells_sum_to_table2(self):
        from repro.analysis import published

        for (protocol, words, feature), (src_mix, dst_mix) in published.TABLE3.items():
            src_total, dst_total = published.TABLE2[(protocol, words, feature)]
            assert src_mix.total == src_total
            assert dst_mix.total == dst_total

    def test_table3_totals_consistent(self):
        from repro.analysis import published

        for (protocol, words), (src_mix, dst_mix) in published.TABLE3_TOTALS.items():
            by_feature_src = [
                m for (p, w, _f), (m, _d) in published.TABLE3.items()
                if p == protocol and w == words
            ]
            total = by_feature_src[0]
            for m in by_feature_src[1:]:
                total = total + m
            assert total == src_mix
