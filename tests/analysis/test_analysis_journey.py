"""Unit + integration tests for cross-peer journey reconstruction."""

import io
import json

import pytest

from repro.analysis.journey import (
    STAGE_ORDER,
    estimate_clock_offsets,
    export_journeys_jsonl,
    journey_flows,
    journey_stats,
    origin_id,
    reconstruct_journeys,
    render_journey_table,
    render_stage_summary,
)
from repro.runtime.runner import measure_live
from repro.runtime.tracing import EventType, TraceEvent, Tracer


def ev(etype, endpoint, ts_ns, *, label="run", channel=1, seq=0, aux=-1,
       kind="", dur_ns=0, origin=-1, origin_ts_ns=-1):
    return TraceEvent(
        ts_ns=ts_ns, etype=etype, label=label, endpoint=endpoint,
        channel=channel, seq=seq, aux=aux, attempt=0, kind=kind,
        feature=None, dur_ns=dur_ns, origin=origin,
        origin_ts_ns=origin_ts_ns,
    )


def synthetic_chain(*, send=1_000, queue=100, flush=50, wire=400, decode=30,
                    park=0, deliver=80, seq=0, label="run"):
    """One complete src->dst DATA chain with exact stage durations."""
    flush_end = send + queue + flush
    arrival = flush_end + wire
    events = [
        ev(EventType.SEND, "src", send, label=label, seq=seq, kind="DATA"),
        ev(EventType.FLUSH, "src", flush_end, label=label, seq=seq,
           kind="DATA", dur_ns=flush),
        ev(EventType.RECV, "dst", arrival, label=label, seq=seq,
           kind="DATA", dur_ns=decode, origin=origin_id("src"),
           origin_ts_ns=send),
    ]
    if park:
        events.append(ev(EventType.PARK, "dst", arrival + decode,
                         label=label, seq=seq))
        events.append(ev(EventType.UNPARK, "dst", arrival + decode + park,
                         label=label, seq=seq))
    events.append(ev(EventType.DELIVER, "dst",
                     arrival + decode + park + deliver,
                     label=label, seq=seq))
    return events


class TestReconstruction:
    def test_stage_decomposition_is_exact(self):
        journeys = reconstruct_journeys(synthetic_chain(park=60))
        (j,) = journeys
        assert j.complete
        assert j.context_matched
        assert j.src == "src" and j.dst == "dst"
        assert j.stages == {"queue": 100, "flush": 50, "wire": 400,
                            "decode": 30, "park": 60, "deliver": 80}
        assert j.total_ns == 100 + 50 + 400 + 30 + 60 + 80
        assert j.stage_sum_ns == j.total_ns

    def test_stage_sum_telescopes_to_end_to_end(self):
        events = synthetic_chain(queue=7, flush=3, wire=11, decode=5,
                                 park=13, deliver=2)
        (j,) = reconstruct_journeys(events)
        assert j.stage_sum_ns == j.total_ns

    def test_missing_send_yields_incomplete_unmatched_journey(self):
        events = [e for e in synthetic_chain()
                  if e.etype is not EventType.SEND]
        (j,) = reconstruct_journeys(events)
        assert not j.complete
        assert not j.context_matched
        assert j.dst == "dst"

    def test_foreign_context_does_not_match(self):
        """A RECV whose context names a different send (ring overwrote
        the real one) still yields a journey, flagged unmatched."""
        events = synthetic_chain()
        recv = [e for e in events if e.etype is EventType.RECV][0]
        idx = events.index(recv)
        events[idx] = ev(EventType.RECV, "dst", recv.ts_ns, seq=0,
                         kind="DATA", dur_ns=recv.dur_ns,
                         origin=recv.origin, origin_ts_ns=recv.origin_ts_ns - 1)
        (j,) = reconstruct_journeys(events)
        assert j.complete  # timeline is still whole...
        assert not j.context_matched  # ...but the anchor is not trusted

    def test_retransmit_counted(self):
        events = synthetic_chain()
        events.append(ev(EventType.RETRANSMIT, "src", 2_000, seq=0,
                         kind="data"))
        (j,) = reconstruct_journeys(events)
        assert j.retransmits == 1

    def test_duplicate_recv_keeps_first(self):
        events = synthetic_chain()
        events.append(ev(EventType.RECV, "dst", 99_999, seq=0, kind="DATA",
                         dur_ns=1, origin=origin_id("src"),
                         origin_ts_ns=1_000))
        (j,) = reconstruct_journeys(events)
        assert j.stages["wire"] == 400  # first arrival wins

    def test_ack_return_leg(self):
        events = synthetic_chain()  # delivers at 1660
        events.append(ev(EventType.ACK_RX, "src", 2_160, seq=0, kind="ACK"))
        (j,) = reconstruct_journeys(events)
        assert j.ack_return_ns == 500

    def test_cum_ack_covers_lower_seqs_only(self):
        events = synthetic_chain(seq=3)
        events.append(ev(EventType.ACK_RX, "src", 5_000, seq=3,
                         kind="CUM_ACK"))  # == seq: not past it
        events.append(ev(EventType.ACK_RX, "src", 6_000, seq=4,
                         kind="CUM_ACK"))
        (j,) = reconstruct_journeys(events)
        assert j.ack_return_ns == 6_000 - j.deliver_ns

    def test_journeys_sorted_by_send_time(self):
        events = (synthetic_chain(send=5_000, seq=1)
                  + synthetic_chain(send=1_000, seq=0))
        seqs = [j.seq for j in reconstruct_journeys(events)]
        assert seqs == [0, 1]


class TestClockAlignment:
    def test_shared_clock_offsets_are_zero(self):
        offsets = estimate_clock_offsets(synthetic_chain())
        assert offsets == {"dst": 0, "src": 0}

    def test_symmetric_links_recover_the_skew(self):
        """dst's clock runs 1000ns ahead; a link measured both ways at
        equal true wire time puts the RTT midpoint at exactly 1000."""
        skew, wire = 1_000, 200
        events = [
            ev(EventType.RECV, "dst", 10_000 + wire + skew, seq=0,
               kind="DATA", origin=origin_id("src"), origin_ts_ns=10_000),
            ev(EventType.RECV, "src", 20_000 + wire, seq=0, kind="DATA",
               origin=origin_id("dst"), origin_ts_ns=20_000 + skew),
            ev(EventType.SEND, "src", 10_000, seq=0, kind="DATA"),
            ev(EventType.SEND, "dst", 20_000 + skew, seq=0, kind="DATA"),
        ]
        offsets = estimate_clock_offsets(events, shared_clock=False,
                                         reference="src")
        assert offsets["src"] == 0
        assert offsets["dst"] == skew

    def test_silent_roster_peer_appears_with_zero_offset(self):
        """A joined peer with no traffic yet (disconnected link graph)
        must still appear in the offsets, not be dropped or raise."""
        offsets = estimate_clock_offsets(
            synthetic_chain(), shared_clock=False,
            reference="src", roster=["src", "dst", "idle"])
        assert offsets["idle"] == 0
        assert set(offsets) == {"src", "dst", "idle"}

    def test_unreachable_peers_reported_as_uncovered(self):
        """BFS from the reference skips peers no measured link reaches
        and reports them as uncovered instead of raising or silently
        presenting them as aligned."""
        skew, wire = 1_000, 200
        events = [
            ev(EventType.RECV, "dst", 10_000 + wire + skew, seq=0,
               kind="DATA", origin=origin_id("src"), origin_ts_ns=10_000),
            ev(EventType.RECV, "src", 20_000 + wire, seq=0, kind="DATA",
               origin=origin_id("dst"), origin_ts_ns=20_000 + skew),
        ]
        uncovered = set()
        offsets = estimate_clock_offsets(
            events, shared_clock=False, reference="src",
            roster=["src", "dst", "idle"], uncovered=uncovered)
        assert offsets["dst"] == skew
        assert uncovered == {"idle"}

    def test_silent_reference_does_not_misroot_the_propagation(self):
        """With the reference itself a traffic-less roster peer, the
        measured component is unreachable from it: its members keep
        offset zero and are reported uncovered — never mapped through
        a root they share no link with."""
        skew, wire = 1_000, 200
        events = [
            ev(EventType.RECV, "dst", 10_000 + wire + skew, seq=0,
               kind="DATA", origin=origin_id("src"), origin_ts_ns=10_000),
            ev(EventType.RECV, "src", 20_000 + wire, seq=0, kind="DATA",
               origin=origin_id("dst"), origin_ts_ns=20_000 + skew),
        ]
        uncovered = set()
        offsets = estimate_clock_offsets(
            events, shared_clock=False, reference="idle",
            roster=["idle"], uncovered=uncovered)
        assert offsets == {"dst": 0, "idle": 0, "src": 0}
        assert uncovered == {"src", "dst"}

    def test_applied_offsets_fix_wire_stage(self):
        skew = 1_000
        events = synthetic_chain()
        shifted = [
            ev(e.etype, e.endpoint, e.ts_ns + (skew if e.endpoint == "dst"
                                               else 0),
               label=e.label, channel=e.channel, seq=e.seq, aux=e.aux,
               kind=e.kind, dur_ns=e.dur_ns, origin=e.origin,
               origin_ts_ns=e.origin_ts_ns)
            for e in events
        ]
        (j,) = reconstruct_journeys(shifted,
                                    offsets={"src": 0, "dst": skew})
        assert j.stages["wire"] == 400
        assert j.stage_sum_ns == j.total_ns


class TestStatsAndRendering:
    def test_stats_coverage_and_stage_histograms(self):
        events = (synthetic_chain(send=1_000, seq=0)
                  + synthetic_chain(send=10_000, seq=1, park=40))
        stats = journey_stats(reconstruct_journeys(events))
        assert stats.delivered == 2
        assert stats.complete == 2
        assert stats.coverage == 1.0
        assert stats.worst_stage_error == 0.0
        assert stats.stage_hists["queue"].count == 2
        assert set(stats.stage_hists) == set(STAGE_ORDER)

    def test_coverage_drops_with_incomplete_journeys(self):
        complete = synthetic_chain(seq=0)
        headless = [e for e in synthetic_chain(send=9_000, seq=1)
                    if e.etype is not EventType.SEND]
        stats = journey_stats(reconstruct_journeys(complete + headless))
        assert stats.delivered == 2
        assert stats.complete == 1
        assert stats.coverage == 0.5

    def test_renderings_mention_the_key_facts(self):
        journeys = reconstruct_journeys(synthetic_chain(park=60))
        table = render_journey_table(journeys)
        summary = render_stage_summary(journey_stats(journeys))
        assert "src->dst" in table
        assert "coverage" in summary
        assert "end-to-end" in summary

    def test_flows_and_jsonl_export(self):
        journeys = reconstruct_journeys(synthetic_chain())
        (flow,) = journey_flows(journeys)
        assert flow["from_track"] == "run:src"
        assert flow["to_track"] == "run:dst"
        assert flow["to_ts_ns"] > flow["from_ts_ns"]
        buf = io.StringIO()
        assert export_journeys_jsonl(journeys, buf) == 1
        record = json.loads(buf.getvalue())
        assert record["complete"] is True
        assert set(record["stages"]) <= set(STAGE_ORDER)


class TestLiveIntegration:
    @pytest.mark.parametrize("mode", ["cm5", "cr"])
    def test_live_loopback_reconstructs_with_tight_stage_sums(self, mode):
        """The tentpole acceptance, in miniature: a traced live run in
        each mode must reconstruct >= 95% of delivered messages into
        complete journeys whose stage sum matches end-to-end within
        10% (exactly, on the shared loopback clock)."""
        tracer = Tracer()
        kwargs = (dict(drop_rate=0.05, reorder_rate=0.25, seed=7)
                  if mode == "cm5" else {})
        result = measure_live(
            "indefinite", mode=mode, transport="loopback",
            message_words=256, packet_words=16, deadline=30.0,
            tracer=tracer, **kwargs,
        )
        assert result.completed
        journeys = reconstruct_journeys(tracer.events())
        stats = journey_stats(journeys)
        assert stats.delivered >= 16
        assert stats.coverage >= 0.95
        assert stats.worst_stage_error <= 0.10
        matched = [j for j in journeys if j.complete]
        assert all(j.context_matched for j in matched)
        assert all(j.stages[name] >= 0 for j in matched
                   for name in j.stages)
