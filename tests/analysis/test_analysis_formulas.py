"""Tests for the closed-form cost model, including the paper pins."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.am.costs import CmamCosts
from repro.analysis.formulas import CostFormulas
from repro.arch.attribution import Feature


@pytest.fixture
def f4():
    return CostFormulas(CmamCosts(n=4))


class TestPaperPins:
    def test_single_packet(self, f4):
        costs = f4.single_packet()
        assert (costs.src.total, costs.dst.total) == (20, 27)

    @pytest.mark.parametrize(
        "words,src,dst", [(16, 173, 224), (1024, 6221, 5516)]
    )
    def test_finite(self, f4, words, src, dst):
        costs = f4.finite_sequence(words)
        assert (costs.src.total, costs.dst.total) == (src, dst)

    @pytest.mark.parametrize(
        "words,src,dst", [(16, 216, 265), (1024, 13824, 16141)]
    )
    def test_indefinite(self, f4, words, src, dst):
        costs = f4.indefinite_sequence(words)
        assert (costs.src.total, costs.dst.total) == (src, dst)

    def test_cr_indefinite_equals_base(self, f4):
        for words in (16, 1024):
            cr = f4.cr_indefinite_sequence(words)
            cmam = f4.indefinite_sequence(words)
            assert cr.total == (
                cmam.src.get(Feature.BASE).total + cmam.dst.get(Feature.BASE).total
            )

    def test_overhead_fraction_claims(self, f4):
        assert 0.5 <= f4.finite_sequence(16).overhead_fraction <= 0.71
        assert f4.finite_sequence(1024).overhead_fraction < 0.5
        assert 0.5 <= f4.indefinite_sequence(16).overhead_fraction <= 0.71
        assert 0.5 <= f4.indefinite_sequence(1024).overhead_fraction <= 0.71


class TestParameters:
    def test_ooo_count_affects_in_order_only(self, f4):
        all_in_order = f4.indefinite_sequence(1024, ooo_count=0)
        half = f4.indefinite_sequence(1024, ooo_count=128)
        assert all_in_order.src.total == half.src.total
        assert (
            all_in_order.dst.get(Feature.BASE)
            == half.dst.get(Feature.BASE)
        )
        assert (
            all_in_order.dst.get(Feature.IN_ORDER).total
            < half.dst.get(Feature.IN_ORDER).total
        )

    def test_impossible_ooo_rejected(self, f4):
        with pytest.raises(ValueError):
            f4.indefinite_sequence(16, ooo_count=4)  # p-1 == 3 max

    def test_group_acks_cut_ft_cost(self, f4):
        per = f4.indefinite_sequence(1024)
        grouped = f4.indefinite_sequence(1024, ack_group=16)
        assert grouped.total < per.total
        assert (
            grouped.src.get(Feature.FAULT_TOLERANCE).total
            < per.src.get(Feature.FAULT_TOLERANCE).total
        )

    def test_by_name_dispatch(self, f4):
        assert f4.by_name("single-packet", 0).protocol == "single-packet"
        assert f4.by_name("finite-sequence", 16).total == 397
        with pytest.raises(KeyError):
            f4.by_name("nonsense", 16)


class TestFormulaMatchesSimulation:
    """The keystone property: the analytical model and the executable
    system agree exactly, feature by feature, for arbitrary parameters."""

    @settings(max_examples=25, deadline=None)
    @given(
        words=st.integers(1, 400),
        n=st.sampled_from([4, 8, 16, 32]),
    )
    def test_finite(self, words, n):
        from repro import InOrderDelivery, quick_setup, run_finite_sequence

        costs = CmamCosts(n=n)
        sim, src, dst, _net = quick_setup(
            packet_size=n, delivery_factory=InOrderDelivery
        )
        result = run_finite_sequence(sim, src, dst, words, costs=costs)
        predicted = CostFormulas(costs).finite_sequence(words)
        assert result.src_costs == predicted.src
        assert result.dst_costs == predicted.dst

    @settings(max_examples=25, deadline=None)
    @given(
        words=st.integers(1, 400),
        n=st.sampled_from([4, 8, 16]),
        fraction=st.sampled_from([0.0, 0.25, 0.5]),
    )
    def test_indefinite(self, words, n, fraction):
        from repro import FractionReorder, quick_setup, run_indefinite_sequence
        from repro.protocols.base import packets_for

        costs = CmamCosts(n=n)
        model_factory = lambda: FractionReorder(fraction)
        sim, src, dst, _net = quick_setup(
            packet_size=n, delivery_factory=model_factory
        )
        result = run_indefinite_sequence(sim, src, dst, words, costs=costs)
        p = packets_for(words, n)
        ooo = FractionReorder(fraction).expected_ooo(p)
        predicted = CostFormulas(costs).indefinite_sequence(words, ooo_count=ooo)
        assert result.src_costs == predicted.src
        assert result.dst_costs == predicted.dst

    @settings(max_examples=15, deadline=None)
    @given(words=st.integers(1, 300), n=st.sampled_from([4, 8]))
    def test_cr_protocols(self, words, n):
        from repro import (
            quick_cr_setup,
            run_cr_finite_sequence,
            run_cr_indefinite_sequence,
        )

        costs = CmamCosts(n=n)
        formulas = CostFormulas(costs)
        sim, src, dst, _net = quick_cr_setup(packet_size=n)
        fin = run_cr_finite_sequence(sim, src, dst, words, costs=costs)
        pred_fin = formulas.cr_finite_sequence(words)
        assert fin.src_costs == pred_fin.src
        assert fin.dst_costs == pred_fin.dst

        sim2, src2, dst2, _net2 = quick_cr_setup(packet_size=n)
        ind = run_cr_indefinite_sequence(sim2, src2, dst2, words, costs=costs)
        pred_ind = formulas.cr_indefinite_sequence(words)
        assert ind.src_costs == pred_ind.src
        assert ind.dst_costs == pred_ind.dst

    @settings(max_examples=15, deadline=None)
    @given(
        words=st.integers(1, 300),
        group=st.sampled_from([2, 4, 16]),
    )
    def test_group_acks(self, words, group):
        from repro import GroupAck, quick_setup, run_indefinite_sequence

        costs = CmamCosts(n=4)
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(
            sim, src, dst, words, costs=costs, ack_policy=GroupAck(group)
        )
        predicted = CostFormulas(costs).indefinite_sequence(words, ack_group=group)
        assert result.src_costs == predicted.src
        assert result.dst_costs == predicted.dst
