"""Edge-case tests for the wall-clock time-share tables."""

import pytest

from repro.arch.attribution import FEATURE_ORDER, Feature
from repro.analysis.timeshare import (
    TimeBreakdown,
    WireStats,
    overhead_collapse,
    render_mode_comparison,
    render_time_table,
)


def build(protocol="single", mode="cm5", words=64, src=None, dst=None):
    return TimeBreakdown.build(protocol, mode, words, src or {}, dst or {})


class TestBuildEdgeCases:
    def test_missing_features_default_to_zero(self):
        breakdown = build(src={Feature.BASE: 100})
        assert len(breakdown.rows) == len(FEATURE_ORDER)
        assert breakdown.row(Feature.BASE).src_ns == 100
        assert breakdown.row(Feature.FAULT_TOLERANCE).total_ns == 0
        assert breakdown.total_ns == 100

    def test_zero_total_shares_are_zero_not_nan(self):
        breakdown = build()
        assert breakdown.total_ns == 0
        assert breakdown.overhead_fraction == 0.0
        assert breakdown.share(Feature.BASE) == 0.0
        assert breakdown.ordering_plus_fault_share() == 0.0
        assert all(share == 0.0 for share in breakdown.shares().values())

    def test_unknown_feature_row_raises(self):
        with pytest.raises(KeyError):
            build().row("not a feature")

    def test_overhead_excludes_base(self):
        breakdown = build(src={Feature.BASE: 600, Feature.IN_ORDER: 300},
                          dst={Feature.FAULT_TOLERANCE: 100})
        assert breakdown.overhead_ns == 400
        assert breakdown.overhead_fraction == pytest.approx(0.4)

    def test_to_dict_round_trips_shape(self):
        payload = build(src={Feature.BASE: 10}).to_dict()
        assert payload["total_ns"] == 10
        assert set(payload["features"]) == {
            feature.value for feature in FEATURE_ORDER
        }


class TestRenderingEdgeCases:
    def test_time_table_with_zero_total(self):
        out = render_time_table(build())
        assert "0.0" in out
        assert "100%" in out  # total row renders even when empty

    def test_mode_comparison_with_zero_cr_total(self):
        cm5 = build(mode="cm5", src={Feature.BASE: 500,
                                     Feature.IN_ORDER: 500})
        cr = build(mode="cr")
        out = render_mode_comparison(cm5, cr)
        assert "CM-5 vs CR transport" in out
        assert "nan" not in out.lower()

    def test_mode_comparison_includes_every_feature_row(self):
        cm5 = build(src={feature: 100 for feature in FEATURE_ORDER})
        cr = build(mode="cr", src={Feature.BASE: 100})
        out = render_mode_comparison(cm5, cr)
        for feature in FEATURE_ORDER:
            assert out.count("\n") >= len(FEATURE_ORDER)
        assert "Total" in out


class TestOverheadCollapse:
    def test_collapse_ratio(self):
        cm5 = build(src={Feature.BASE: 500, Feature.IN_ORDER: 300,
                         Feature.FAULT_TOLERANCE: 200})
        cr = build(mode="cr", src={Feature.BASE: 500})
        result = overhead_collapse(cm5, cr)
        assert result["cm5_ordering_fault_share"] == pytest.approx(0.5)
        assert result["cr_ordering_fault_share"] == 0.0
        assert result["collapse_ratio"] == 0.0

    def test_zero_cm5_share_avoids_division_by_zero(self):
        quiet = build(src={Feature.BASE: 100})
        result = overhead_collapse(quiet, quiet)
        assert result["collapse_ratio"] == 0.0


class TestWireStatsEdgeCases:
    def test_zero_data_datagrams(self):
        stats = WireStats(data_datagrams=0, ack_datagrams=0)
        assert stats.acks_per_data == 0.0
        assert stats.selective_repeat_savings == 0.0

    def test_savings_fraction(self):
        stats = WireStats(data_datagrams=10, ack_datagrams=2,
                          retransmitted_bytes=100,
                          goback_n_equivalent_bytes=400)
        assert stats.selective_repeat_savings == pytest.approx(0.75)
