"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    CmamCosts,
    CM5Network,
    CM5NetworkConfig,
    CRNetwork,
    CRNetworkConfig,
    InOrderDelivery,
    Simulator,
    make_node_pair,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def costs():
    return CmamCosts(n=4)


@pytest.fixture
def cm5_pair(sim):
    """Quiet two-node pair on the CM-5 model with the paper's half-out-of-
    order data channels."""
    network = CM5Network(sim, CM5NetworkConfig())
    src, dst = make_node_pair(sim, network)
    return sim, src, dst, network


@pytest.fixture
def cm5_inorder_pair(sim):
    """Quiet two-node pair on the CM-5 model with order-preserving channels."""
    network = CM5Network(sim, CM5NetworkConfig(), delivery_factory=InOrderDelivery)
    src, dst = make_node_pair(sim, network)
    return sim, src, dst, network


@pytest.fixture
def cr_pair(sim):
    """Quiet two-node pair on the Compressionless Routing model."""
    network = CRNetwork(sim, CRNetworkConfig())
    src, dst = make_node_pair(sim, network)
    return sim, src, dst, network
