"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_call_now_runs_after_current_event(self, sim):
        fired = []

        def outer():
            sim.call_now(lambda: fired.append("inner"))
            fired.append("outer")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]


class TestCancellation:
    def test_cancelled_event_skipped(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        doomed = sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(3.0, lambda: fired.append("c"))
        doomed.cancel()
        sim.run()
        assert fired == ["a", "c"]

    def test_pending_excludes_cancelled(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


class TestRun:
    def test_run_until(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_step_returns_none_when_empty(self, sim):
        assert sim.step() is None

    def test_step_single(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        event = sim.step()
        assert fired == [1]
        assert event.time == 1.0

    def test_event_budget_detects_livelock(self, sim):
        def respawn():
            sim.schedule(0.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_event_scheduled_during_run_executes(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append("late")))
        sim.run()
        assert fired == ["late"]
        assert sim.now == 2.0
