"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_call_now_runs_after_current_event(self, sim):
        fired = []

        def outer():
            sim.call_now(lambda: fired.append("inner"))
            fired.append("outer")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]


class TestCancellation:
    def test_cancelled_event_skipped(self, sim):
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        doomed = sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(3.0, lambda: fired.append("c"))
        doomed.cancel()
        sim.run()
        assert fired == ["a", "c"]

    def test_pending_excludes_cancelled(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


class TestRun:
    def test_run_until(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_step_returns_none_when_empty(self, sim):
        assert sim.step() is None

    def test_step_single(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        event = sim.step()
        assert fired == [1]
        assert event.time == 1.0

    def test_event_budget_detects_livelock(self, sim):
        def respawn():
            sim.schedule(0.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_event_scheduled_during_run_executes(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: fired.append("late")))
        sim.run()
        assert fired == ["late"]
        assert sim.now == 2.0


class TestCancellationEdgeCases:
    """Cancelled-event skipping in step()/_peek() and the live counter."""

    def test_step_skips_cancelled_and_runs_next_live(self, sim):
        fired = []
        doomed = sim.schedule(1.0, lambda: fired.append("doomed"))
        sim.schedule(2.0, lambda: fired.append("live"))
        doomed.cancel()
        event = sim.step()
        assert fired == ["live"]
        assert event.time == 2.0
        assert sim.events_processed == 1

    def test_step_returns_none_when_only_cancelled_remain(self, sim):
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None).cancel()
        assert sim.step() is None
        assert sim.pending == 0
        assert sim.events_processed == 0

    def test_peek_discards_leading_cancelled_events(self, sim):
        fired = []
        head = sim.schedule(1.0, lambda: fired.append("head"))
        sim.schedule(2.0, lambda: fired.append("tail"))
        head.cancel()
        # run(until=...) peeks before stepping: the cancelled head must
        # not stall it or satisfy the until-bound.
        sim.run(until=5.0)
        assert fired == ["tail"]
        assert sim.now == 5.0

    def test_cancel_is_idempotent_for_pending_counter(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_after_fire_does_not_corrupt_counter(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()
        assert sim.pending == 1

    def test_cancel_inside_action_of_same_timestamp(self, sim):
        fired = []
        victim = sim.schedule(1.0, lambda: fired.append("victim"))
        # The assassin fires earlier and cancels the already-queued victim.
        sim.schedule(0.5, victim.cancel)
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_pending_tracks_mixed_lifecycle(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        assert sim.pending == 4
        events[0].cancel()
        events[2].cancel()
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 2


class TestRunUntilClockSemantics:
    """run(until=...) clock behavior on empty and bounded queues."""

    def test_empty_queue_jumps_clock_to_until(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0
        assert sim.events_processed == 0

    def test_until_in_past_of_clock_does_not_rewind(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert sim.now == 10.0
        sim.run(until=5.0)
        assert sim.now == 10.0

    def test_until_before_next_event_leaves_it_queued(self, sim):
        fired = []
        sim.schedule(8.0, lambda: fired.append(1))
        sim.run(until=3.0)
        assert fired == []
        assert sim.now == 3.0
        assert sim.pending == 1

    def test_until_exactly_at_event_time_fires_it(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append(1))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_queue_of_only_cancelled_events_still_advances_clock(self, sim):
        sim.schedule(1.0, lambda: None).cancel()
        sim.run(until=9.0)
        assert sim.now == 9.0


class TestEventBudget:
    """The event-budget exhaustion error (livelock detector)."""

    def test_budget_error_mentions_the_limit(self, sim):
        def respawn():
            sim.schedule(0.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError, match="250"):
            sim.run(max_events=250)

    def test_budget_exactly_sufficient_succeeds(self, sim):
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=10)
        assert sim.events_processed == 10

    def test_cancelled_events_do_not_consume_budget(self, sim):
        for i in range(20):
            sim.schedule(float(i), lambda: None).cancel()
        sim.schedule(100.0, lambda: None)
        sim.run(max_events=1)
        assert sim.events_processed == 1
