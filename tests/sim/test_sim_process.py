"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process, Signal, WaitEvent


@pytest.fixture
def sim():
    return Simulator()


class TestDelay:
    def test_process_sleeps(self, sim):
        trace = []

        def body():
            trace.append(("start", sim.now))
            yield Delay(5.0)
            trace.append(("woke", sim.now))

        Process(sim, body(), name="sleeper")
        sim.run()
        assert trace == [("start", 0.0), ("woke", 5.0)]

    def test_result_captured(self, sim):
        def body():
            yield Delay(1.0)
            return 42

        proc = Process(sim, body())
        sim.run()
        assert proc.finished
        assert proc.result == 42

    def test_start_delay(self, sim):
        times = []

        def body():
            times.append(sim.now)
            yield Delay(0.0)

        Process(sim, body(), start_delay=3.0)
        sim.run()
        assert times == [3.0]


class TestSignals:
    def test_wait_event_receives_value(self, sim):
        signal = Signal("data")
        got = []

        def waiter():
            value = yield WaitEvent(signal)
            got.append(value)

        Process(sim, waiter())
        sim.schedule(2.0, lambda: signal.fire("hello"))
        sim.run()
        assert got == ["hello"]

    def test_multiple_waiters_all_wake(self, sim):
        signal = Signal()
        woken = []

        def waiter(tag):
            yield WaitEvent(signal)
            woken.append(tag)

        Process(sim, waiter("a"))
        Process(sim, waiter("b"))
        sim.schedule(1.0, signal.fire)
        sim.run()
        assert sorted(woken) == ["a", "b"]

    def test_fire_count(self, sim):
        signal = Signal()
        signal.fire()
        signal.fire()
        assert signal.fire_count == 2


class TestComposition:
    def test_wait_for_other_process(self, sim):
        order = []

        def child():
            yield Delay(5.0)
            order.append("child done")
            return "payload"

        def parent(child_proc):
            result = yield child_proc
            order.append(f"parent got {result}")

        child_proc = Process(sim, child(), name="child")
        Process(sim, parent(child_proc), name="parent")
        sim.run()
        assert order == ["child done", "parent got payload"]

    def test_wait_for_finished_process(self, sim):
        def quick():
            return "done"
            yield  # pragma: no cover

        def parent(child_proc):
            yield Delay(10.0)
            result = yield child_proc
            return result

        child_proc = Process(sim, quick())
        parent_proc = Process(sim, parent(child_proc))
        sim.run()
        assert parent_proc.result == "done"

    def test_bare_yield_reschedules(self, sim):
        order = []

        def a():
            order.append("a1")
            yield
            order.append("a2")

        def b():
            order.append("b1")
            yield
            order.append("b2")

        Process(sim, a())
        Process(sim, b())
        sim.run()
        assert order == ["a1", "b1", "a2", "b2"]

    def test_unsupported_directive_raises(self, sim):
        def bad():
            yield "nonsense"

        Process(sim, bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_process_error_surfaces(self, sim):
        def bad():
            yield Delay(1.0)
            raise ValueError("boom")

        proc = Process(sim, bad())
        with pytest.raises(ValueError):
            sim.run()
        assert proc.finished
        assert isinstance(proc.error, ValueError)
