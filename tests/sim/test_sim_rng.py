"""Unit tests for named random streams."""

from repro.sim.rng import RngStreams


def test_same_name_same_stream_object():
    streams = RngStreams(seed=1)
    assert streams.stream("faults") is streams.stream("faults")


def test_streams_are_deterministic_across_instances():
    a = RngStreams(seed=7).stream("routing")
    b = RngStreams(seed=7).stream("routing")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RngStreams(seed=7)
    routing = streams.stream("routing")
    faults = streams.stream("faults")
    seq_a = [routing.random() for _ in range(5)]
    # Drawing from faults must not perturb routing's future draws.
    fresh = RngStreams(seed=7)
    fresh_routing = fresh.stream("routing")
    __ = [fresh.stream("faults").random() for _ in range(100)]
    seq_b = [fresh_routing.random() for _ in range(5)]
    # routing already consumed 5 draws in `streams`; compare against a
    # clean replay instead.
    replay = RngStreams(seed=7).stream("routing")
    assert [replay.random() for _ in range(5)] == seq_a
    assert seq_b == seq_a


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x")
    b = RngStreams(seed=2).stream("x")
    assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]


def test_fork():
    base = RngStreams(seed=10)
    fork = base.fork(5)
    assert fork.seed == 15
    assert fork.stream("x").random() == RngStreams(seed=15).stream("x").random()
