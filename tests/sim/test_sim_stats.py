"""Unit tests for statistics accumulators."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, Histogram, RunningStats


class TestCounter:
    def test_incr_and_get(self):
        counter = Counter()
        counter.incr("a")
        counter.incr("a", 4)
        assert counter.get("a") == 5
        assert counter.get("missing") == 0

    def test_as_dict_is_copy(self):
        counter = Counter()
        counter.incr("a")
        d = counter.as_dict()
        d["a"] = 99
        assert counter.get("a") == 1


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.stdev == 0.0

    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.min == 2.0
        assert stats.max == 9.0
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_summary_keys(self):
        stats = RunningStats()
        stats.add(1.0)
        assert set(stats.summary()) == {"n", "mean", "stdev", "min", "max"}

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_matches_batch_computation(self, values):
        stats = RunningStats()
        stats.extend(values)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.mean == pytest.approx(mean, rel=1e-6, abs=1e-6)
        assert stats.variance == pytest.approx(var, rel=1e-6, abs=1e-3)
        assert stats.min == min(values)
        assert stats.max == max(values)


class TestHistogram:
    def test_binning(self):
        hist = Histogram(lo=0.0, hi=10.0, bins=10)
        hist.add(0.5)
        hist.add(9.5)
        hist.add(5.0)
        assert hist.counts[0] == 1
        assert hist.counts[9] == 1
        assert hist.counts[5] == 1
        assert hist.total == 3

    def test_out_of_range_clamps(self):
        hist = Histogram(lo=0.0, hi=10.0, bins=10)
        hist.add(-5.0)
        hist.add(100.0)
        assert hist.counts[0] == 1
        assert hist.counts[9] == 1

    def test_edges(self):
        hist = Histogram(lo=0.0, hi=1.0, bins=4)
        assert hist.bin_edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Histogram(lo=1.0, hi=1.0, bins=4)
        with pytest.raises(ValueError):
            Histogram(lo=0.0, hi=1.0, bins=0)

    def test_render(self):
        hist = Histogram(lo=0.0, hi=2.0, bins=2)
        hist.add(0.5)
        hist.add(1.5)
        hist.add(1.6)
        text = hist.render(width=10)
        assert text.count("\n") == 1
        assert "#" in text
