"""Unit tests for tracing."""

from repro.sim.trace import NULL_TRACER, Tracer


def test_emit_and_query():
    tracer = Tracer()
    tracer.emit(1.0, "net", "inject", packet=1)
    tracer.emit(2.0, "net", "deliver", packet=1)
    tracer.emit(3.0, "proto", "ack")
    assert len(tracer) == 3
    assert tracer.count("net") == 2
    assert tracer.labels("proto") == ["ack"]
    assert [r.time for r in tracer.by_category("net")] == [1.0, 2.0]


def test_detail_captured():
    tracer = Tracer()
    tracer.emit(0.0, "cat", "label", a=1, b="two")
    assert tracer.records[0].detail == {"a": 1, "b": "two"}


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(0.0, "cat", "label")
    assert len(tracer) == 0


def test_null_tracer_is_disabled():
    NULL_TRACER.emit(0.0, "cat", "label")
    assert len(NULL_TRACER) == 0


def test_category_filter():
    tracer = Tracer()
    tracer.set_filter(lambda cat: cat.startswith("net"))
    tracer.emit(0.0, "net.inject", "a")
    tracer.emit(0.0, "proto", "b")
    assert tracer.labels() == ["a"]


def test_clear():
    tracer = Tracer()
    tracer.emit(0.0, "c", "l")
    tracer.clear()
    assert len(tracer) == 0


def test_render_is_stringy_and_limited():
    tracer = Tracer()
    for i in range(5):
        tracer.emit(float(i), "cat", f"event{i}", idx=i)
    text = tracer.render(limit=2)
    assert "event0" in text and "event1" in text and "event2" not in text
    assert "idx=0" in text
