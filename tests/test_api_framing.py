"""Tests for length-prefix message framing over channels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import quick_cr_setup, quick_setup
from repro.api import Endpoint, open_channel
from repro.api.framing import FrameAssembler, FramedChannel


class TestFrameAssembler:
    def test_single_message(self):
        assembler = FrameAssembler()
        assembler.feed([3, 10, 20, 30])
        assert assembler.messages == [[10, 20, 30]]

    def test_messages_split_across_feeds(self):
        assembler = FrameAssembler()
        assembler.feed([4, 1])
        assert assembler.in_progress
        assembler.feed([2, 3])
        assembler.feed([4, 2, 7, 8])
        assert assembler.messages == [[1, 2, 3, 4], [7, 8]]
        assert not assembler.in_progress

    def test_empty_message(self):
        assembler = FrameAssembler()
        assembler.feed([0, 2, 5, 6])
        assert assembler.messages == [[], [5, 6]]

    def test_callback(self):
        assembler = FrameAssembler()
        seen = []
        assembler.on_message(seen.append)
        assembler.feed([1, 42, 2, 1, 2])
        assert seen == [[42], [1, 2]]

    @given(
        messages=st.lists(
            st.lists(st.integers(0, 2**31), max_size=10), max_size=10
        ),
        chunk=st.integers(1, 7),
    )
    def test_any_chunking_reassembles_exactly(self, messages, chunk):
        """Framing is chunking-invariant: however the stream is sliced,
        the original message boundaries come back."""
        stream = []
        for message in messages:
            stream.append(len(message))
            stream.extend(message)
        assembler = FrameAssembler()
        for i in range(0, len(stream), chunk):
            assembler.feed(stream[i:i + chunk])
        assert assembler.messages == [list(m) for m in messages]


class TestFramedChannel:
    def _framed(self, setup):
        sim, a, b, _net = setup()
        channel = open_channel(Endpoint(a), Endpoint(b))
        return sim, FramedChannel(channel)

    def test_messages_roundtrip_cmam(self):
        sim, framed = self._framed(quick_setup)
        framed.send_message([1, 2, 3])
        framed.send_message([])
        framed.send_message(list(range(50)))
        sim.run()
        framed.close()
        assert framed.received_messages == [[1, 2, 3], [], list(range(50))]

    def test_messages_roundtrip_cr(self):
        sim, framed = self._framed(quick_cr_setup)
        framed.send_message([9] * 13)
        framed.send_message([7])
        sim.run()
        assert framed.received_messages == [[9] * 13, [7]]

    def test_message_boundaries_independent_of_packetization(self):
        """A 5-word message spans two 4-word packets; boundaries survive."""
        sim, framed = self._framed(quick_setup)
        framed.send_message([1, 2, 3, 4, 5])
        framed.send_message([6])
        sim.run()
        framed.close()
        assert framed.received_messages == [[1, 2, 3, 4, 5], [6]]

    def test_callback_fires_in_order(self):
        sim, framed = self._framed(quick_setup)
        seen = []
        framed.on_message(seen.append)
        for i in range(5):
            framed.send_message([i, i])
        sim.run()
        framed.close()
        assert seen == [[i, i] for i in range(5)]

    @settings(max_examples=15, deadline=None)
    @given(
        messages=st.lists(
            st.lists(st.integers(0, 2**31), max_size=12),
            min_size=1, max_size=8,
        )
    )
    def test_property_roundtrip_over_reordering_network(self, messages):
        sim, framed = self._framed(quick_setup)
        for message in messages:
            framed.send_message(message)
        sim.run()
        framed.close()
        assert framed.received_messages == [list(m) for m in messages]
