"""Unit tests for nodes and memory."""

import pytest

from repro.network.cm5 import CM5Network
from repro.node import Memory, Node, make_node_pair
from repro.sim.engine import Simulator


class TestMemory:
    def test_unwritten_reads_zero(self):
        assert Memory(100).read_word(5) == 0

    def test_write_read_word(self):
        mem = Memory(100)
        mem.write_word(7, 42)
        assert mem.read_word(7) == 42

    def test_block_roundtrip(self):
        mem = Memory(100)
        mem.write_block(10, [1, 2, 3])
        assert mem.read_block(10, 3) == [1, 2, 3]
        assert mem.read_block(9, 5) == [0, 1, 2, 3, 0]

    def test_words_masked_to_32_bits(self):
        mem = Memory(10)
        mem.write_word(0, 1 << 35)
        assert mem.read_word(0) == 0

    def test_bounds_checked(self):
        mem = Memory(10)
        with pytest.raises(IndexError):
            mem.read_word(10)
        with pytest.raises(IndexError):
            mem.write_block(8, [1, 2, 3])
        with pytest.raises(IndexError):
            mem.read_word(-1)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Memory(0)


class TestNode:
    def test_node_wiring(self):
        sim = Simulator()
        net = CM5Network(sim)
        node = Node(3, sim, net, packet_size=8)
        assert node.ni.packet_size == 8
        assert node.processor.name == "node3"

    def test_handler_registration(self):
        sim = Simulator()
        net = CM5Network(sim)
        node = Node(0, sim, net)
        fn = lambda node, *args: None
        node.register_handler("h", fn)
        assert node.handler("h") is fn

    def test_duplicate_handler_rejected(self):
        sim = Simulator()
        net = CM5Network(sim)
        node = Node(0, sim, net)
        node.register_handler("h", lambda *a: None)
        with pytest.raises(ValueError):
            node.register_handler("h", lambda *a: None)

    def test_missing_handler_raises(self):
        sim = Simulator()
        net = CM5Network(sim)
        node = Node(0, sim, net)
        with pytest.raises(KeyError):
            node.handler("missing")

    def test_make_node_pair(self):
        sim = Simulator()
        net = CM5Network(sim)
        src, dst = make_node_pair(sim, net, packet_size=4, src_id=5, dst_id=9)
        assert (src.node_id, dst.node_id) == (5, 9)
        assert src.ni.packet_size == dst.ni.packet_size == 4
