"""Unit tests for protocol plumbing."""

import pytest

from repro.arch.attribution import Feature
from repro.arch.isa import mix
from repro.network.cm5 import CM5Network
from repro.node import make_node_pair
from repro.protocols.base import (
    ProtocolRun,
    packet_payload_sizes,
    packets_for,
)
from repro.sim.engine import Simulator


class TestPacketMath:
    def test_exact_division(self):
        assert packets_for(16, 4) == 4

    def test_partial_last_packet(self):
        assert packets_for(17, 4) == 5
        assert packet_payload_sizes(17, 4) == [4, 4, 4, 4, 1]

    def test_zero_message(self):
        assert packets_for(0, 4) == 0
        assert packet_payload_sizes(0, 4) == []

    def test_message_smaller_than_packet(self):
        assert packet_payload_sizes(3, 8) == [3]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            packets_for(-1, 4)
        with pytest.raises(ValueError):
            packets_for(4, 0)

    def test_sizes_sum_to_message(self):
        for words in (0, 1, 7, 16, 100, 1023):
            for n in (2, 4, 8, 128):
                assert sum(packet_payload_sizes(words, n)) == words


class TestProtocolRun:
    def test_measures_only_the_delta(self):
        sim = Simulator()
        net = CM5Network(sim)
        src, dst = make_node_pair(sim, net)
        src.processor.reg_ops(100)  # pre-existing work
        run = ProtocolRun(sim, src, dst)
        src.processor.reg_ops(5)
        with dst.processor.attribute(Feature.IN_ORDER):
            dst.processor.mem_ops(3)
        result = run.finish(
            protocol="test", message_words=0, packet_size=4,
            packets_sent=0, completed=True,
        )
        assert result.src_costs.total == 5
        assert result.dst_costs.get(Feature.IN_ORDER) == mix(mem=3)

    def test_restart_measurement(self):
        sim = Simulator()
        net = CM5Network(sim)
        src, dst = make_node_pair(sim, net)
        run = ProtocolRun(sim, src, dst)
        src.processor.reg_ops(99)  # warmup
        run.restart_measurement()
        src.processor.reg_ops(1)
        result = run.finish("test", 0, 4, 0, True)
        assert result.src_costs.total == 1

    def test_result_aggregates(self):
        sim = Simulator()
        net = CM5Network(sim)
        src, dst = make_node_pair(sim, net)
        run = ProtocolRun(sim, src, dst)
        with src.processor.attribute(Feature.BASE):
            src.processor.reg_ops(50)
        with src.processor.attribute(Feature.FAULT_TOLERANCE):
            src.processor.reg_ops(50)
        result = run.finish("test", 0, 4, 0, True, extra="x")
        assert result.total == 100
        assert result.overhead_total == 50
        assert result.overhead_fraction == 0.5
        assert result.detail["extra"] == "x"
        assert result.combined().total == 100
        assert "test" in str(result)
