"""Tests for the eager-transfer protocol variant."""

import pytest

from repro import InOrderDelivery, quick_setup, run_finite_sequence
from repro.arch.attribution import Feature
from repro.protocols.eager import BounceBufferPool, run_eager


class TestHappyPath:
    @pytest.mark.parametrize("words", [4, 16, 100, 1024])
    def test_delivers_exact_data(self, words):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        message = list(range(7, 7 + words))
        result = run_eager(sim, src, dst, words, message=message)
        assert result.completed
        assert result.delivered_words == message

    def test_no_round_trip_before_data(self):
        """Eager's defining property: the handshake is gone.  Buffer
        management shrinks to one header + bounce bookkeeping + the copy."""
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        eager = run_eager(sim, src, dst, 16)
        sim2, s2, d2, _net2 = quick_setup(delivery_factory=InOrderDelivery)
        rendezvous = run_finite_sequence(sim2, s2, d2, 16)
        # The sender never receives a reply in the happy path.
        assert eager.src_costs.get(Feature.BUFFER_MGMT).total < (
            rendezvous.src_costs.get(Feature.BUFFER_MGMT).total
        )

    def test_survives_reordered_data(self):
        """Offsets make arrival order irrelevant, even data-before-header."""
        sim, src, dst, _net = quick_setup()  # pair-swap reordering
        message = list(range(1, 65))
        result = run_eager(sim, src, dst, 64, message=message)
        assert result.completed
        assert result.delivered_words == message


class TestCrossover:
    def test_eager_wins_small_messages(self):
        for words in (4, 16, 64):
            sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
            eager = run_eager(sim, src, dst, words)
            sim2, s2, d2, _net2 = quick_setup(delivery_factory=InOrderDelivery)
            rendezvous = run_finite_sequence(sim2, s2, d2, words)
            assert eager.total < rendezvous.total

    def test_rendezvous_wins_large_messages(self):
        """The copy through the bounce buffer eventually costs more than
        the handshake saved."""
        for words in (256, 1024):
            sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
            eager = run_eager(sim, src, dst, words)
            sim2, s2, d2, _net2 = quick_setup(delivery_factory=InOrderDelivery)
            rendezvous = run_finite_sequence(sim2, s2, d2, words)
            assert eager.total > rendezvous.total

    def test_copy_charged_to_buffer_mgmt(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_eager(sim, src, dst, 1024)
        # The copy alone is 1024 words of loads+stores = 1024 mem.
        assert result.dst_costs.get(Feature.BUFFER_MGMT).mem >= 1024


class TestBouncePool:
    def test_refusal_then_retry_succeeds(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        pool = BounceBufferPool(buffers=1, buffer_words=64)
        hog = pool.claim(32)
        sim.schedule(500.0, lambda: pool.release(hog))
        result = run_eager(sim, src, dst, 32, pool=pool)
        assert result.completed
        assert result.detail["refusals"] >= 1

    def test_oversized_message_permanently_refused(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        pool = BounceBufferPool(buffers=2, buffer_words=8)
        with pytest.raises(RuntimeError):
            run_eager(sim, src, dst, 16, pool=pool)

    def test_pool_accounting(self):
        pool = BounceBufferPool(buffers=2, buffer_words=128)
        a = pool.claim(100)
        assert pool.free_count == 1
        assert pool.claim(200) is None  # too big
        pool.release(a)
        assert pool.free_count == 2
        assert pool.claims == 1 and pool.refusals == 1

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            BounceBufferPool(buffers=0)
