"""Unit tests for acknowledgement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols.acks import GroupAck, NoAck, PerPacketAck, make_ack_policy


class TestPerPacket:
    def test_every_packet_acked(self):
        policy = PerPacketAck()
        assert all(policy.ack_after(i) == 1 for i in range(1, 20))
        assert policy.final_ack(17) == 0
        assert policy.acks_for(256) == 256


class TestGroupAck:
    def test_ack_every_g(self):
        policy = GroupAck(4)
        fired = [i for i in range(1, 13) if policy.ack_after(i)]
        assert fired == [4, 8, 12]

    def test_final_ack_covers_remainder(self):
        policy = GroupAck(4)
        assert policy.final_ack(10) == 2
        assert policy.final_ack(12) == 0

    def test_acks_for(self):
        assert GroupAck(4).acks_for(12) == 3
        assert GroupAck(4).acks_for(13) == 4
        assert GroupAck(16).acks_for(256) == 16

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            GroupAck(0)

    @given(g=st.integers(1, 20), p=st.integers(0, 500))
    def test_ack_count_consistency(self, g, p):
        """Simulating arrival-by-arrival acking matches acks_for(p)."""
        policy = GroupAck(g)
        acks = sum(1 for i in range(1, p + 1) if policy.ack_after(i) > 0)
        if policy.final_ack(p) > 0:
            acks += 1
        assert acks == policy.acks_for(p)

    @given(g=st.integers(1, 20), p=st.integers(1, 500))
    def test_coverage_sums_to_p(self, g, p):
        """Every packet is covered by exactly one acknowledgement."""
        policy = GroupAck(g)
        covered = sum(policy.ack_after(i) for i in range(1, p + 1))
        covered += policy.final_ack(p)
        assert covered == p


class TestNoAck:
    def test_never_acks(self):
        policy = NoAck()
        assert policy.ack_after(5) == 0
        assert policy.final_ack(100) == 0
        assert policy.acks_for(100) == 0


def test_factory():
    assert isinstance(make_ack_policy(None), PerPacketAck)
    policy = make_ack_policy(8)
    assert isinstance(policy, GroupAck)
    assert policy.group == 8
