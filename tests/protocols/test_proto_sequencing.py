"""Unit tests for sequence generation and the reorder window."""

import pytest
from hypothesis import given, strategies as st

from repro.protocols.sequencing import ReorderWindow, SequenceError, SequenceGenerator


class TestSequenceGenerator:
    def test_monotone(self):
        gen = SequenceGenerator()
        assert [gen.next() for _ in range(4)] == [0, 1, 2, 3]
        assert gen.issued == 4

    def test_custom_start(self):
        assert SequenceGenerator(start=10).next() == 10


class TestReorderWindow:
    def test_in_order_passthrough(self):
        window = ReorderWindow(window=4)
        for i in range(5):
            assert window.accept(i, f"p{i}") == [(i, f"p{i}")]
        assert window.ooo_accepted == 0

    def test_out_of_order_parks_then_drains(self):
        window = ReorderWindow(window=4)
        assert window.accept(1, "b") == []
        assert window.parked_now == 1
        run = window.accept(0, "a")
        assert run == [(0, "a"), (1, "b")]
        assert window.parked_now == 0
        assert window.ooo_accepted == 1

    def test_long_gap_drains_in_sequence(self):
        window = ReorderWindow(window=8)
        for seq in (3, 1, 2):
            assert window.accept(seq, seq) == []
        run = window.accept(0, 0)
        assert [s for s, _v in run] == [0, 1, 2, 3]

    def test_duplicate_of_delivered(self):
        window = ReorderWindow(window=4)
        window.accept(0, "a")
        assert window.accept(0, "a-again") == []
        assert window.duplicates == 1

    def test_duplicate_of_parked(self):
        window = ReorderWindow(window=4)
        window.accept(2, "c")
        assert window.accept(2, "c-again") == []
        assert window.duplicates == 1
        assert window.parked_now == 1

    def test_window_overflow_raises(self):
        window = ReorderWindow(window=4)
        with pytest.raises(SequenceError):
            window.accept(4, "too far")

    def test_peak_tracking(self):
        window = ReorderWindow(window=8)
        for seq in (5, 3, 1):
            window.accept(seq, seq)
        assert window.parked_peak == 3

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ReorderWindow(window=0)


@given(
    p=st.integers(1, 200),
    seed=st.integers(0, 1000),
)
def test_any_permutation_delivers_in_order(p, seed):
    """Whatever the arrival permutation, the window's output is 0..p-1 in
    order — the in-order delivery invariant of the stream protocol."""
    import random

    order = list(range(p))
    random.Random(seed).shuffle(order)
    window = ReorderWindow(window=p + 1)
    delivered = []
    for seq in order:
        delivered.extend(s for s, _v in window.accept(seq, seq))
    assert delivered == list(range(p))
    assert window.parked_now == 0
