"""Tests for the credit-windowed stream (end-to-end flow control)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import quick_setup
from repro.arch.attribution import Feature
from repro.protocols.windowed import (
    BACKLOG_ENQ,
    CREDIT_CHECK,
    run_windowed_stream,
)


class TestFlowControlInvariant:
    def test_buffer_never_exceeds_window(self):
        sim, src, dst, _net = quick_setup()
        result = run_windowed_stream(sim, src, dst, 256, window=4)
        assert result.completed
        assert result.detail["buffer_peak"] <= 4

    def test_burst_absorbed_by_backlog(self):
        sim, src, dst, _net = quick_setup()
        result = run_windowed_stream(sim, src, dst, 256, window=4)
        # 64 packets against a window of 4: most sends park first.
        assert result.detail["backlog_peak"] == 60

    def test_data_in_order_and_complete(self):
        sim, src, dst, _net = quick_setup()
        message = list(range(1000, 1128))
        result = run_windowed_stream(sim, src, dst, 128, message=message)
        assert result.delivered_words == message

    @settings(max_examples=20, deadline=None)
    @given(
        window=st.integers(1, 32),
        packets=st.integers(1, 60),
        interval=st.sampled_from([1.0, 5.0, 20.0]),
    )
    def test_invariant_for_any_window_and_rate(self, window, packets, interval):
        """The flow-control property: for any window size and consumption
        rate, the receive buffer never exceeds the window and everything
        arrives in order."""
        sim, src, dst, _net = quick_setup()
        words = packets * 4
        result = run_windowed_stream(
            sim, src, dst, words, window=window, consume_interval=interval
        )
        assert result.completed
        assert result.detail["buffer_peak"] <= window
        assert result.delivered_words == list(range(1, words + 1))


class TestAccounting:
    def test_flow_control_costs_attributed_to_buffer_mgmt(self):
        sim, src, dst, _net = quick_setup()
        result = run_windowed_stream(sim, src, dst, 64, window=2)
        bm = result.src_costs.get(Feature.BUFFER_MGMT)
        # Every send pays the credit check; parked sends pay queueing.
        assert bm.total >= 16 * CREDIT_CHECK.total
        assert result.detail["backlog_peak"] > 0
        assert bm.total >= BACKLOG_ENQ.total

    def test_large_window_costs_less_than_small(self):
        totals = {}
        for window in (2, 64):
            sim, src, dst, _net = quick_setup()
            totals[window] = run_windowed_stream(
                sim, src, dst, 256, window=window
            ).total
        assert totals[64] < totals[2]


class TestValidation:
    def test_zero_window_rejected(self):
        from repro.am.cmam import AMDispatcher
        from repro.protocols.windowed import WindowedStreamSender

        sim, src, dst, _net = quick_setup()
        with pytest.raises(ValueError):
            WindowedStreamSender(src, AMDispatcher(src), 1, window=0)

    def test_oversized_payload_rejected(self):
        from repro.am.cmam import AMDispatcher
        from repro.protocols.windowed import WindowedStreamSender

        sim, src, dst, _net = quick_setup()
        sender = WindowedStreamSender(src, AMDispatcher(src), 1, window=4)
        with pytest.raises(ValueError):
            sender.send((1, 2, 3, 4, 5))

    def test_message_length_validated(self):
        sim, src, dst, _net = quick_setup()
        with pytest.raises(ValueError):
            run_windowed_stream(sim, src, dst, 16, message=[1, 2])
