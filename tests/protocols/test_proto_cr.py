"""Tests for the CR-based protocols (Section 4, Figures 5 and 7)."""

import pytest

from repro import (
    CRNetworkConfig,
    CRNetwork,
    FaultInjector,
    FaultPlan,
    InOrderDelivery,
    quick_cr_setup,
    quick_setup,
    run_cr_finite_sequence,
    run_cr_indefinite_sequence,
    run_finite_sequence,
    run_indefinite_sequence,
)
from repro.am.cmam import AMDispatcher
from repro.arch.attribution import Feature
from repro.node import make_node_pair
from repro.protocols.cr_protocols import CRFiniteReceiver, CRFiniteSender
from repro.sim.engine import Simulator


class TestCRFinite:
    def test_completes_and_delivers(self):
        sim, src, dst, _net = quick_cr_setup()
        message = list(range(7, 39))
        result = run_cr_finite_sequence(sim, src, dst, 32, message=message)
        assert result.completed
        assert result.delivered_words == message

    def test_cost_equals_cmam_base(self):
        """Section 4.1: 'The costs ... correspond exactly to the base costs
        of the CMAM implementations' (destination slightly cheaper)."""
        for words in (16, 1024):
            sim, src, dst, _net = quick_cr_setup()
            cr = run_cr_finite_sequence(sim, src, dst, words)
            sim2, src2, dst2, _net2 = quick_setup(delivery_factory=InOrderDelivery)
            cmam = run_finite_sequence(sim2, src2, dst2, words)
            cmam_base_src = cmam.src_costs.get(Feature.BASE).total
            assert cr.src_costs.total == cmam_base_src
            cmam_base_dst = cmam.dst_costs.get(Feature.BASE).total
            assert cr.dst_costs.total <= cmam_base_dst + 6  # +table store -branches

    def test_no_handshake_no_offsets_no_ack(self):
        sim, src, dst, _net = quick_cr_setup()
        result = run_cr_finite_sequence(sim, src, dst, 64)
        for costs in (result.src_costs, result.dst_costs):
            assert costs.get(Feature.IN_ORDER).total == 0
            assert costs.get(Feature.FAULT_TOLERANCE).total == 0
        # Residual buffer management: just the table store at the dest.
        assert result.src_costs.get(Feature.BUFFER_MGMT).total == 0
        assert result.dst_costs.get(Feature.BUFFER_MGMT).total == 6

    def test_improvement_10_to_50_percent(self):
        improvements = {}
        for words in (16, 1024):
            sim, src, dst, _net = quick_cr_setup()
            cr = run_cr_finite_sequence(sim, src, dst, words)
            sim2, src2, dst2, _net2 = quick_setup(delivery_factory=InOrderDelivery)
            cmam = run_finite_sequence(sim2, src2, dst2, words)
            improvements[words] = 1 - cr.total / cmam.total
        assert improvements[1024] < improvements[16]
        assert 0.08 <= improvements[1024] <= 0.20
        assert 0.45 <= improvements[16] <= 0.60

    def test_hardware_recovers_faults_for_free(self):
        injector = FaultInjector(FaultPlan.corrupt_indices(0, 1, [1, 3]))
        sim, src, dst, _net = quick_cr_setup(injector=injector)
        message = list(range(1, 17))
        result = run_cr_finite_sequence(sim, src, dst, 16, message=message)
        assert result.completed
        assert result.delivered_words == message
        # Identical software cost to a fault-free run: retries are hardware.
        assert result.total == 181

    def test_header_rejection_defers_but_completes(self):
        sim = Simulator()
        net = CRNetwork(sim, CRNetworkConfig(latency=1.0, reject_backoff=20.0))
        src, dst = make_node_pair(sim, net)
        ready = {"ok": False}
        net.set_acceptor(dst.node_id, lambda packet: ready["ok"])
        sim.schedule(100.0, lambda: ready.update(ok=True))

        message = list(range(1, 17))
        src.memory.write_block(0, message)
        dispatcher = AMDispatcher(dst)
        receiver = CRFiniteReceiver(dst, dispatcher)
        sender = CRFiniteSender(src, dst.node_id, 0, 16)
        sender.start()
        sim.run()
        assert receiver.completed_transfers
        src_id, addr, words = receiver.completed_transfers[0]
        assert src_id == src.node_id
        assert dst.memory.read_block(addr, words) == message
        assert net.counters.get("rejections") > 0


class TestCRIndefinite:
    def test_completes_in_order(self):
        sim, src, dst, _net = quick_cr_setup()
        message = list(range(3, 67))
        result = run_cr_indefinite_sequence(sim, src, dst, 64, message=message)
        assert result.completed
        assert result.delivered_words == message

    def test_cost_equals_cmam_base_exactly(self):
        for words in (16, 1024):
            sim, src, dst, _net = quick_cr_setup()
            cr = run_cr_indefinite_sequence(sim, src, dst, words)
            sim2, src2, dst2, _net2 = quick_setup()
            cmam = run_indefinite_sequence(sim2, src2, dst2, words)
            assert cr.src_costs.total == cmam.src_costs.get(Feature.BASE).total
            assert cr.dst_costs.total == cmam.dst_costs.get(Feature.BASE).total

    def test_reduction_is_about_70_percent(self):
        for words in (16, 1024):
            sim, src, dst, _net = quick_cr_setup()
            cr = run_cr_indefinite_sequence(sim, src, dst, words)
            sim2, src2, dst2, _net2 = quick_setup()
            cmam = run_indefinite_sequence(sim2, src2, dst2, words)
            reduction = 1 - cr.total / cmam.total
            assert 0.67 <= reduction <= 0.72

    def test_zero_overhead_features(self):
        sim, src, dst, _net = quick_cr_setup()
        result = run_cr_indefinite_sequence(sim, src, dst, 256)
        assert result.overhead_total == 0

    def test_faults_invisible_to_software(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [0, 1, 2]))
        sim, src, dst, net = quick_cr_setup(injector=injector)
        message = list(range(1, 33))
        result = run_cr_indefinite_sequence(sim, src, dst, 32, message=message)
        assert result.completed
        assert result.delivered_words == message
        assert net.counters.get("hardware_retries") == 3
        # Software cost identical to fault-free.
        sim2, src2, dst2, _net2 = quick_cr_setup()
        clean = run_cr_indefinite_sequence(sim2, src2, dst2, 32)
        assert result.total == clean.total

    def test_oversized_send_rejected(self):
        from repro.protocols.cr_protocols import CRStreamSender

        sim, src, dst, _net = quick_cr_setup()
        sender = CRStreamSender(src, dst.node_id)
        with pytest.raises(ValueError):
            sender.send((1, 2, 3, 4, 5))
