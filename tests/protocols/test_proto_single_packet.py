"""Tests for single-packet delivery (Table 1)."""

from repro import quick_setup, run_single_packet
from repro.arch.attribution import Feature
from repro.protocols.single_packet import TABLE1_ROWS, table1_totals


class TestTable1:
    def test_row_totals(self):
        assert table1_totals() == (20, 27)

    def test_rows_match_paper_structure(self):
        by_name = {row.description: row for row in TABLE1_ROWS}
        assert by_name["Call/Return"].source == 3
        assert by_name["Call/Return"].destination == 10
        assert by_name["NI setup"].destination is None
        assert by_name["Read from NI"].source is None
        assert by_name["Check NI status"].source == 7
        assert by_name["Check NI status"].destination == 12


class TestMeasuredRun:
    def test_end_to_end_cost_is_47(self):
        sim, src, dst, _net = quick_setup()
        result = run_single_packet(sim, src, dst)
        assert result.src_costs.total == 20
        assert result.dst_costs.total == 27
        assert result.total == 47

    def test_ni_access_dominates(self):
        """34 of the 47 instructions are NI access in the paper's terms
        (dev accesses plus the register work of setup/status checking);
        the dev count alone is 10."""
        sim, src, dst, _net = quick_setup()
        result = run_single_packet(sim, src, dst)
        assert result.src_costs.total_mix.dev == 5
        assert result.dst_costs.total_mix.dev == 5

    def test_everything_is_base_cost(self):
        """Single-packet delivery provides no communication services, so
        there is nothing to attribute to overhead features."""
        sim, src, dst, _net = quick_setup()
        result = run_single_packet(sim, src, dst)
        for costs in (result.src_costs, result.dst_costs):
            assert costs.overhead_total == 0
            assert costs.get(Feature.BASE).total > 0

    def test_payload_delivered(self):
        sim, src, dst, _net = quick_setup()
        result = run_single_packet(sim, src, dst, payload=(9, 9, 9, 9))
        assert result.completed
        assert result.delivered_words == [9, 9, 9, 9]

    def test_unreliable_on_faulty_network(self):
        """The paper: single-packet delivery is not delivered reliably.
        A corrupted packet is simply lost (detect-only hardware)."""
        from repro import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan(corrupt_prob=1.0))
        sim, src, dst, _net = quick_setup(injector=injector)
        result = run_single_packet(sim, src, dst)
        assert not result.completed
        assert result.delivered_words == []
        assert dst.ni.detected_errors == 1
