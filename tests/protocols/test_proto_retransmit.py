"""Unit tests for the retransmission buffer."""

import pytest

from repro.protocols.retransmit import RetransmitBuffer
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_buffer(sim, timeout=10.0, max_retries=16):
    resent = []
    buf = RetransmitBuffer(
        sim, resend=lambda record: resent.append((sim.now, record.seq)),
        timeout=timeout, max_retries=max_retries,
    )
    return buf, resent


class TestLifecycle:
    def test_ack_before_timeout_prevents_resend(self, sim):
        buf, resent = make_buffer(sim)
        buf.buffer(0, (1, 2))
        sim.schedule(5.0, lambda: buf.ack(0))
        sim.run()
        assert resent == []
        assert buf.outstanding == 0
        assert buf.acked == 1

    def test_timeout_fires_resend_and_rearms(self, sim):
        buf, resent = make_buffer(sim, timeout=10.0)
        buf.buffer(0, (1,))
        sim.schedule(25.0, lambda: buf.ack(0))
        sim.run()
        assert [t for t, _s in resent] == [10.0, 20.0]
        assert buf.retransmissions == 2

    def test_duplicate_ack_returns_false(self, sim):
        buf, _resent = make_buffer(sim)
        buf.buffer(0, (1,))
        assert buf.ack(0)
        assert not buf.ack(0)
        sim.run()

    def test_duplicate_seq_rejected(self, sim):
        buf, _resent = make_buffer(sim)
        buf.buffer(0, (1,))
        with pytest.raises(ValueError):
            buf.buffer(0, (2,))

    def test_max_retries_exhausted_raises(self, sim):
        buf, _resent = make_buffer(sim, timeout=1.0, max_retries=3)
        buf.buffer(0, (1,))
        with pytest.raises(RuntimeError):
            sim.run()

    def test_contains(self, sim):
        buf, _resent = make_buffer(sim)
        buf.buffer(3, (1,))
        assert 3 in buf
        buf.ack(3)
        assert 3 not in buf


class TestCumulativeAck:
    def test_ack_up_to(self, sim):
        buf, _resent = make_buffer(sim)
        for seq in range(5):
            buf.buffer(seq, (seq,))
        released = buf.ack_up_to(2)
        assert released == 3
        assert buf.outstanding == 2
        assert 3 in buf and 4 in buf
        buf.cancel_all()
        sim.run()

    def test_cancel_all(self, sim):
        buf, resent = make_buffer(sim)
        for seq in range(3):
            buf.buffer(seq, ())
        buf.cancel_all()
        sim.run()
        assert resent == []
        assert buf.outstanding == 0
