"""Tests for the indefinite-sequence (stream) protocol (Figure 4)."""

import pytest

from repro import (
    FaultInjector,
    FaultPlan,
    FractionReorder,
    GroupAck,
    HeadDelayReorder,
    InOrderDelivery,
    quick_setup,
    run_indefinite_sequence,
)
from repro.arch.attribution import Feature


class TestHappyPath:
    def test_16_words_matches_paper(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(sim, src, dst, 16)
        assert result.completed
        assert (result.src_costs.total, result.dst_costs.total) == (216, 265)

    def test_1024_words_matches_paper(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(sim, src, dst, 1024)
        assert (result.src_costs.total, result.dst_costs.total) == (13824, 16141)

    def test_user_sees_transmission_order_despite_reordering(self):
        sim, src, dst, _net = quick_setup()
        message = list(range(500, 564))
        result = run_indefinite_sequence(sim, src, dst, 64, message=message)
        assert result.delivered_words == message
        assert result.detail["ooo_arrivals"] == 8  # half of 16 packets

    def test_half_the_packets_arrive_out_of_order(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(sim, src, dst, 1024)
        assert result.detail["ooo_arrivals"] == 128
        assert result.detail["acks_sent"] == 256

    def test_in_order_network_means_no_ordering_work_at_dest_buffering(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_indefinite_sequence(sim, src, dst, 64)
        assert result.detail["ooo_arrivals"] == 0
        # Sequencing cost remains at the source (it cannot know the network
        # preserves order) and the in-seq check remains at the destination.
        assert result.src_costs.get(Feature.IN_ORDER).total == 16 * 5

    def test_deep_reordering_with_head_delay(self):
        sim, src, dst, _net = quick_setup(
            delivery_factory=lambda: HeadDelayReorder(7)
        )
        message = list(range(1, 65))
        result = run_indefinite_sequence(sim, src, dst, 64, message=message)
        assert result.delivered_words == message
        assert result.detail["ooo_arrivals"] == 7

    def test_quarter_reorder_fraction(self):
        sim, src, dst, _net = quick_setup(
            delivery_factory=lambda: FractionReorder(0.25)
        )
        result = run_indefinite_sequence(sim, src, dst, 1024)
        assert result.detail["ooo_arrivals"] == 64
        assert result.completed


class TestFeatureAttribution:
    def test_no_buffer_management(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(sim, src, dst, 1024)
        assert result.src_costs.get(Feature.BUFFER_MGMT).total == 0
        assert result.dst_costs.get(Feature.BUFFER_MGMT).total == 0

    def test_overhead_is_70_percent_and_size_independent(self):
        fractions = []
        for words in (16, 256, 1024):
            sim, src, dst, _net = quick_setup()
            result = run_indefinite_sequence(sim, src, dst, words)
            fractions.append(result.overhead_fraction)
        assert all(0.65 <= f <= 0.72 for f in fractions)
        assert max(fractions) - min(fractions) < 0.05

    def test_source_buffering_charged_to_fault_tolerance(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(sim, src, dst, 16, ack_policy=None)
        # 4 packets x (2 mem buffering + ack receive 27) = 116
        assert result.src_costs.get(Feature.FAULT_TOLERANCE).total == 116


class TestGroupAcks:
    def test_fewer_acks_sent(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(
            sim, src, dst, 1024, ack_policy=GroupAck(16)
        )
        assert result.completed
        assert result.detail["acks_sent"] == 16

    def test_remainder_gets_final_ack(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(
            sim, src, dst, 72, ack_policy=GroupAck(16)
        )  # 18 packets: one group ack + final covering 2
        assert result.completed
        assert result.detail["acks_sent"] == 2

    def test_group_acks_reduce_ft_but_overhead_stays_high(self):
        sim, src, dst, _net = quick_setup()
        per_packet = run_indefinite_sequence(sim, src, dst, 1024)
        sim2, src2, dst2, _net2 = quick_setup()
        grouped = run_indefinite_sequence(
            sim2, src2, dst2, 1024, ack_policy=GroupAck(16)
        )
        assert grouped.total < per_packet.total
        assert grouped.overhead_fraction > 0.40  # "remains significant"

    def test_all_source_records_released(self):
        sim, src, dst, _net = quick_setup()
        result = run_indefinite_sequence(
            sim, src, dst, 128, ack_policy=GroupAck(8)
        )
        assert result.completed  # implies sender.outstanding == 0


class TestFaultRecovery:
    def test_dropped_packet_retransmitted(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [3]))
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        message = list(range(1, 33))
        result = run_indefinite_sequence(
            sim, src, dst, 32, message=message, rto=100.0
        )
        assert result.completed
        assert result.delivered_words == message
        assert result.detail["retransmissions"] == 1

    def test_corrupted_packet_detected_then_recovered(self):
        injector = FaultInjector(FaultPlan.corrupt_indices(0, 1, [0, 5]))
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        result = run_indefinite_sequence(sim, src, dst, 32, rto=100.0)
        assert result.completed
        assert dst.ni.detected_errors == 2

    def test_recovery_costs_attributed_to_fault_tolerance(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [0]))
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        faulty = run_indefinite_sequence(sim, src, dst, 16, rto=100.0)
        sim2, src2, dst2, _net2 = quick_setup(delivery_factory=InOrderDelivery)
        clean = run_indefinite_sequence(sim2, src2, dst2, 16)
        ft_faulty = faulty.src_costs.get(Feature.FAULT_TOLERANCE).total
        ft_clean = clean.src_costs.get(Feature.FAULT_TOLERANCE).total
        assert ft_faulty > ft_clean
        # Base cost at the destination grows by the duplicate... no: the
        # dropped packet never arrived, so the retransmission is the first
        # arrival; base cost equals the clean run's.
        assert faulty.dst_costs.get(Feature.BASE) == clean.dst_costs.get(Feature.BASE)

    def test_duplicate_arrivals_discarded(self):
        """A slow (not lost) ack triggers retransmission; the receiver must
        discard the duplicate data packet."""
        injector = FaultInjector(
            # Drop the *ack* for data packet 2 (ctrl index -3).
            FaultPlan.drop_indices(1, 0, [-3])
        )
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        message = list(range(1, 17))
        result = run_indefinite_sequence(
            sim, src, dst, 16, message=message, rto=100.0
        )
        assert result.completed
        assert result.delivered_words == message
        assert result.detail["duplicates"] == 1

    def test_unreliable_mode_loses_data_silently(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [1]))
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        result = run_indefinite_sequence(
            sim, src, dst, 16, reliable=False, rto=100.0
        )
        assert not result.completed
        assert len(result.delivered_words) < 16
