"""Tests for the finite-sequence, multi-packet protocol (Figure 3)."""

import pytest

from repro import (
    CmamCosts,
    FaultInjector,
    FaultPlan,
    InOrderDelivery,
    quick_setup,
    run_finite_sequence,
)
from repro.am.segments import SegmentTable
from repro.arch.attribution import Feature
from repro.sim.trace import Tracer


class TestHappyPath:
    def test_16_words_matches_paper(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 16)
        assert result.completed
        assert (result.src_costs.total, result.dst_costs.total) == (173, 224)

    def test_1024_words_matches_paper(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 1024)
        assert (result.src_costs.total, result.dst_costs.total) == (6221, 5516)

    def test_data_lands_in_destination_memory(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        message = list(range(100, 148))
        result = run_finite_sequence(sim, src, dst, 48, message=message)
        assert result.delivered_words == message

    def test_message_not_multiple_of_packet_size(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        message = list(range(1, 19))
        result = run_finite_sequence(sim, src, dst, 18, message=message)
        assert result.completed
        assert result.delivered_words == message
        assert result.packets_sent == 5

    def test_offsets_make_arrival_order_irrelevant(self):
        """With reordering data channels the finite protocol's cost and
        outcome are unchanged: offsets, not sequence numbers."""
        sim, src, dst, _net = quick_setup()  # pair-swap reordering
        result = run_finite_sequence(sim, src, dst, 16)
        assert result.completed
        assert result.delivered_words == list(range(1, 17))
        assert (result.src_costs.total, result.dst_costs.total) == (173, 224)

    def test_protocol_trace_has_six_steps_shape(self):
        tracer = Tracer()
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 16, tracer=tracer)
        labels = [r.category for r in tracer]
        assert labels.index("xfer.request") < labels.index("xfer.alloc")
        assert labels.index("xfer.alloc") < labels.index("xfer.complete")
        assert labels.index("xfer.complete") < labels.index("xfer.acked")

    def test_message_length_validation(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        with pytest.raises(ValueError):
            run_finite_sequence(sim, src, dst, 16, message=[1, 2, 3])


class TestFeatureAttribution:
    def test_buffer_mgmt_is_fixed_cost(self):
        totals = []
        for words in (16, 64, 1024):
            sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
            result = run_finite_sequence(sim, src, dst, words)
            totals.append(
                result.src_costs.get(Feature.BUFFER_MGMT).total
                + result.dst_costs.get(Feature.BUFFER_MGMT).total
            )
        assert totals == [148, 148, 148]

    def test_in_order_cost_scales_with_packets(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        small = run_finite_sequence(sim, src, dst, 16)
        sim2, src2, dst2, _net2 = quick_setup(delivery_factory=InOrderDelivery)
        large = run_finite_sequence(sim2, src2, dst2, 160)
        small_io = small.src_costs.get(Feature.IN_ORDER).total + \
            small.dst_costs.get(Feature.IN_ORDER).total
        large_io = large.src_costs.get(Feature.IN_ORDER).total + \
            large.dst_costs.get(Feature.IN_ORDER).total
        # 2p + 3p + 1: 21 at p=4, 201 at p=40
        assert (small_io, large_io) == (21, 201)

    def test_fault_tolerance_is_one_ack(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 1024)
        assert result.src_costs.get(Feature.FAULT_TOLERANCE).total == 27
        assert result.dst_costs.get(Feature.FAULT_TOLERANCE).total == 20


class TestBackpressure:
    def test_allocation_refused_then_retried(self):
        """A destination with no free segments NACKs; the sender backs off
        and eventually succeeds once capacity frees up — software flow
        control in action."""
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        segments = SegmentTable(capacity_segments=1)
        blocker = segments.allocate(8, 2)  # hog the only segment
        sim.schedule(500.0, lambda: segments.free(blocker.segment_id))
        result = run_finite_sequence(sim, src, dst, 16, segments=segments)
        assert result.completed
        assert result.detail["request_retries"] >= 1
        assert result.delivered_words == list(range(1, 17))

    def test_permanently_refused_raises(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        segments = SegmentTable(capacity_segments=1)
        segments.allocate(8, 2)  # never freed
        with pytest.raises(RuntimeError):
            run_finite_sequence(sim, src, dst, 16, segments=segments)


class TestFaultRecovery:
    def test_dropped_data_packet_recovered_by_retransmission(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [2]))
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        result = run_finite_sequence(sim, src, dst, 16, rto=200.0)
        assert result.completed
        assert result.delivered_words == list(range(1, 17))
        assert result.detail["data_retransmissions"] == 1
        # Recovery costs extra: strictly more than the fault-free 397.
        assert result.total > 397

    def test_corrupted_packet_detected_and_recovered(self):
        injector = FaultInjector(FaultPlan.corrupt_indices(0, 1, [0, 3]))
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        result = run_finite_sequence(sim, src, dst, 16, rto=200.0)
        assert result.completed
        assert result.delivered_words == list(range(1, 17))
        assert dst.ni.detected_errors == 2

    def test_without_retransmission_fault_stalls_transfer(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [2]))
        sim, src, dst, _net = quick_setup(
            delivery_factory=InOrderDelivery, injector=injector
        )
        result = run_finite_sequence(sim, src, dst, 16)  # rto=None
        assert not result.completed

    def test_fault_free_run_with_rto_armed_charges_nothing_extra(self):
        sim, src, dst, _net = quick_setup(delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 16, rto=200.0)
        assert result.completed
        assert result.total == 397
