"""Unit tests for feature attribution."""

import pytest

from repro.arch.attribution import (
    AttributionStack,
    Feature,
    FEATURE_ORDER,
    OVERHEAD_FEATURES,
    attribution,
)


class TestAttributionStack:
    def test_default_is_base(self):
        assert AttributionStack().current is Feature.BASE

    def test_push_pop(self):
        stack = AttributionStack()
        stack.push(Feature.IN_ORDER)
        assert stack.current is Feature.IN_ORDER
        assert stack.pop() is Feature.IN_ORDER
        assert stack.current is Feature.BASE

    def test_nesting(self):
        stack = AttributionStack()
        stack.push(Feature.IN_ORDER)
        stack.push(Feature.FAULT_TOLERANCE)
        assert stack.current is Feature.FAULT_TOLERANCE
        stack.pop()
        assert stack.current is Feature.IN_ORDER

    def test_cannot_pop_default(self):
        with pytest.raises(RuntimeError):
            AttributionStack().pop()

    def test_push_requires_feature(self):
        with pytest.raises(TypeError):
            AttributionStack().push("base")


class TestAttributionContext:
    def test_context_manager(self):
        stack = AttributionStack()
        with attribution(stack, Feature.BUFFER_MGMT):
            assert stack.current is Feature.BUFFER_MGMT
        assert stack.current is Feature.BASE

    def test_exception_safety(self):
        stack = AttributionStack()
        with pytest.raises(ValueError):
            with attribution(stack, Feature.BUFFER_MGMT):
                raise ValueError("boom")
        assert stack.current is Feature.BASE
        assert stack.depth == 1

    def test_reentrant_same_feature(self):
        stack = AttributionStack()
        with attribution(stack, Feature.IN_ORDER):
            with attribution(stack, Feature.IN_ORDER):
                assert stack.current is Feature.IN_ORDER
            assert stack.current is Feature.IN_ORDER


def test_feature_order_excludes_user():
    assert Feature.USER not in FEATURE_ORDER
    assert len(FEATURE_ORDER) == 4


def test_overhead_features_exclude_base():
    assert Feature.BASE not in OVERHEAD_FEATURES
    assert set(OVERHEAD_FEATURES) == {
        Feature.BUFFER_MGMT, Feature.IN_ORDER, Feature.FAULT_TOLERANCE
    }
