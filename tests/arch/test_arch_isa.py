"""Unit tests for the instruction taxonomy."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.isa import InstrClass, InstructionMix, ZERO_MIX, mix


class TestInstructionMix:
    def test_default_is_zero(self):
        assert InstructionMix() == ZERO_MIX
        assert not InstructionMix()

    def test_total(self):
        assert mix(reg=3, mem=2, dev=5).total == 10

    def test_addition(self):
        assert mix(1, 2, 3) + mix(4, 5, 6) == mix(5, 7, 9)

    def test_subtraction(self):
        assert mix(5, 7, 9) - mix(4, 5, 6) == mix(1, 2, 3)

    def test_scalar_multiplication(self):
        assert mix(1, 2, 3) * 4 == mix(4, 8, 12)
        assert 4 * mix(1, 2, 3) == mix(4, 8, 12)

    def test_multiplication_by_zero(self):
        assert mix(1, 2, 3) * 0 == ZERO_MIX

    def test_negation(self):
        assert -mix(1, 2, 3) == mix(-1, -2, -3)

    def test_truthiness(self):
        assert mix(reg=1)
        assert mix(dev=1)
        assert not mix()

    def test_count_per_class(self):
        m = mix(reg=7, mem=8, dev=9)
        assert m.count(InstrClass.REG) == 7
        assert m.count(InstrClass.MEM) == 8
        assert m.count(InstrClass.DEV) == 9

    def test_of_single_class(self):
        assert InstructionMix.of(InstrClass.DEV, 5) == mix(dev=5)

    def test_as_dict(self):
        assert mix(1, 2, 3).as_dict() == {"reg": 1, "mem": 2, "dev": 3}

    def test_iter_order(self):
        assert list(mix(1, 2, 3)) == [1, 2, 3]

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            InstructionMix(reg=1.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            mix(1, 2, 3).reg = 5

    def test_add_non_mix_not_supported(self):
        with pytest.raises(TypeError):
            mix(1) + 3

    def test_str(self):
        assert str(mix(1, 2, 3)) == "(reg=1, mem=2, dev=3)"


@given(
    a=st.tuples(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000)),
    b=st.tuples(st.integers(0, 1000), st.integers(0, 1000), st.integers(0, 1000)),
    k=st.integers(0, 100),
)
def test_mix_vector_space_properties(a, b, k):
    """Addition commutes, total is linear, scalar mult distributes."""
    ma, mb = mix(*a), mix(*b)
    assert ma + mb == mb + ma
    assert (ma + mb).total == ma.total + mb.total
    assert (ma + mb) * k == ma * k + mb * k
    assert (ma * k).total == ma.total * k
