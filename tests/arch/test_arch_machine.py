"""Unit tests for the abstract processor."""

import pytest

from repro.arch.attribution import Feature
from repro.arch.isa import mix
from repro.arch.machine import AbstractProcessor


@pytest.fixture
def proc():
    return AbstractProcessor("test")


class TestCharging:
    def test_default_attribution_is_base(self, proc):
        proc.reg_ops(3)
        assert proc.costs.get(Feature.BASE) == mix(reg=3)

    def test_fine_grained_classes(self, proc):
        proc.reg_ops(1)
        proc.loads(2)
        proc.stores(3)
        proc.dev_loads(4)
        proc.dev_stores(5)
        assert proc.costs.total_mix == mix(reg=1, mem=5, dev=9)

    def test_bulk_charge(self, proc):
        proc.charge(mix(reg=10, mem=2, dev=1))
        assert proc.costs.get(Feature.BASE) == mix(reg=10, mem=2, dev=1)

    def test_zero_charge_is_noop(self, proc):
        proc.charge(mix())
        proc.reg_ops(0)
        assert proc.costs.total == 0
        assert list(proc.costs.features()) == []

    def test_negative_count_rejected(self, proc):
        with pytest.raises(ValueError):
            proc.reg_ops(-1)

    def test_explicit_feature_override(self, proc):
        proc.charge(mix(reg=1), feature=Feature.FAULT_TOLERANCE)
        assert proc.costs.get(Feature.FAULT_TOLERANCE) == mix(reg=1)
        assert proc.costs.get(Feature.BASE) == mix()


class TestAttributionIntegration:
    def test_attribute_context(self, proc):
        with proc.attribute(Feature.IN_ORDER):
            proc.reg_ops(5)
        proc.reg_ops(1)
        assert proc.costs.get(Feature.IN_ORDER) == mix(reg=5)
        assert proc.costs.get(Feature.BASE) == mix(reg=1)

    def test_nested_attribution_innermost_wins(self, proc):
        with proc.attribute(Feature.IN_ORDER):
            with proc.attribute(Feature.FAULT_TOLERANCE):
                proc.mem_ops(2)
            proc.mem_ops(1)
        assert proc.costs.get(Feature.FAULT_TOLERANCE) == mix(mem=2)
        assert proc.costs.get(Feature.IN_ORDER) == mix(mem=1)

    def test_current_feature(self, proc):
        assert proc.current_feature is Feature.BASE
        with proc.attribute(Feature.USER):
            assert proc.current_feature is Feature.USER


class TestFreeze:
    def test_frozen_processor_rejects_charges(self, proc):
        proc.freeze()
        with pytest.raises(RuntimeError):
            proc.reg_ops(1)

    def test_thaw(self, proc):
        proc.freeze()
        proc.thaw()
        proc.reg_ops(1)
        assert proc.costs.total == 1

    def test_frozen_allows_zero_charge(self, proc):
        proc.freeze()
        proc.charge(mix())  # nothing charged, nothing raised


class TestMeasurement:
    def test_snapshot_delta(self, proc):
        proc.reg_ops(10)
        snap = proc.snapshot()
        with proc.attribute(Feature.IN_ORDER):
            proc.reg_ops(5)
        delta = proc.delta(snap)
        assert delta.total == 5
        assert delta.get(Feature.IN_ORDER) == mix(reg=5)
        assert delta.get(Feature.BASE) == mix()

    def test_reset(self, proc):
        proc.reg_ops(10)
        proc.reset()
        assert proc.costs.total == 0
