"""Unit tests for weighted cycle models."""

import pytest

from repro.arch.attribution import Feature
from repro.arch.costmodel import (
    CM5_CYCLE_MODEL,
    CostModel,
    UNIT_COST_MODEL,
    dev_weight_sweep,
)
from repro.arch.counters import CostMatrix
from repro.arch.isa import InstrClass, mix


class TestCostModel:
    def test_unit_model_equals_total(self):
        m = mix(reg=10, mem=5, dev=3)
        assert UNIT_COST_MODEL.cycles(m) == m.total

    def test_cm5_model_weights_dev_by_five(self):
        assert CM5_CYCLE_MODEL.cycles(mix(reg=1, mem=1, dev=1)) == 7.0

    def test_weight_lookup(self):
        assert CM5_CYCLE_MODEL.weight(InstrClass.DEV) == 5.0
        assert CM5_CYCLE_MODEL.weight(InstrClass.REG) == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CostModel(name="bad", dev_weight=-1.0)

    def test_matrix_cycles(self):
        matrix = CostMatrix({
            Feature.BASE: mix(reg=10, dev=2),
            Feature.IN_ORDER: mix(mem=4),
        })
        assert CM5_CYCLE_MODEL.matrix_cycles(matrix) == 10 + 10 + 4

    def test_feature_cycles(self):
        matrix = CostMatrix({Feature.BASE: mix(dev=2)})
        per = CM5_CYCLE_MODEL.feature_cycles(matrix)
        assert per[Feature.BASE] == 10.0

    def test_scaled(self):
        scaled = CM5_CYCLE_MODEL.scaled(2.0)
        assert scaled.dev_weight == 2.0
        assert scaled.reg_weight == CM5_CYCLE_MODEL.reg_weight
        assert "dev=2" in scaled.name

    def test_cm5_example_from_appendix(self):
        # Appendix A: 16-word finite source = (128, 10, 35); under the CM-5
        # model that is 128 + 10 + 175 = 313 cycles.
        assert CM5_CYCLE_MODEL.cycles(mix(128, 10, 35)) == 313.0


def test_dev_weight_sweep():
    models = dev_weight_sweep([1.0, 5.0, 10.0])
    assert set(models) == {1.0, 5.0, 10.0}
    m = mix(dev=2)
    assert models[10.0].cycles(m) == 20.0
    assert models[1.0].cycles(m) == 2.0
