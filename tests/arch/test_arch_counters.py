"""Unit tests for cost matrices."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.attribution import Feature
from repro.arch.counters import CostMatrix
from repro.arch.isa import InstrClass, ZERO_MIX, mix


class TestCostMatrix:
    def test_empty(self):
        matrix = CostMatrix()
        assert matrix.total == 0
        assert matrix.get(Feature.BASE) == ZERO_MIX

    def test_add_accumulates(self):
        matrix = CostMatrix()
        matrix.add(Feature.BASE, mix(reg=5))
        matrix.add(Feature.BASE, mix(reg=3, dev=1))
        assert matrix.get(Feature.BASE) == mix(reg=8, dev=1)

    def test_add_one(self):
        matrix = CostMatrix()
        matrix.add_one(Feature.IN_ORDER, InstrClass.MEM, 4)
        assert matrix.get(Feature.IN_ORDER) == mix(mem=4)

    def test_add_rejects_non_mix(self):
        with pytest.raises(TypeError):
            CostMatrix().add(Feature.BASE, 5)

    def test_total_mix(self):
        matrix = CostMatrix()
        matrix.add(Feature.BASE, mix(reg=5))
        matrix.add(Feature.IN_ORDER, mix(mem=2))
        assert matrix.total_mix == mix(reg=5, mem=2)
        assert matrix.total == 7

    def test_overhead_excludes_base_and_user(self):
        matrix = CostMatrix()
        matrix.add(Feature.BASE, mix(reg=100))
        matrix.add(Feature.USER, mix(reg=50))
        matrix.add(Feature.IN_ORDER, mix(reg=20))
        matrix.add(Feature.FAULT_TOLERANCE, mix(reg=30))
        assert matrix.overhead_total == 50

    def test_overhead_fraction_excludes_user_from_denominator(self):
        matrix = CostMatrix()
        matrix.add(Feature.BASE, mix(reg=50))
        matrix.add(Feature.IN_ORDER, mix(reg=50))
        matrix.add(Feature.USER, mix(reg=1000))
        assert matrix.overhead_fraction() == pytest.approx(0.5)

    def test_overhead_fraction_empty(self):
        assert CostMatrix().overhead_fraction() == 0.0

    def test_merge(self):
        a = CostMatrix()
        a.add(Feature.BASE, mix(reg=1))
        b = CostMatrix()
        b.add(Feature.BASE, mix(mem=2))
        b.add(Feature.IN_ORDER, mix(dev=3))
        a.merge(b)
        assert a.get(Feature.BASE) == mix(reg=1, mem=2)
        assert a.get(Feature.IN_ORDER) == mix(dev=3)

    def test_addition_operator(self):
        a = CostMatrix({Feature.BASE: mix(reg=1)})
        b = CostMatrix({Feature.BASE: mix(reg=2)})
        combined = a + b
        assert combined.get(Feature.BASE) == mix(reg=3)
        # operands unchanged
        assert a.get(Feature.BASE) == mix(reg=1)

    def test_snapshot_diff(self):
        matrix = CostMatrix()
        matrix.add(Feature.BASE, mix(reg=5))
        snap = matrix.snapshot()
        matrix.add(Feature.BASE, mix(reg=2))
        matrix.add(Feature.IN_ORDER, mix(mem=1))
        delta = matrix.diff(snap)
        assert delta.get(Feature.BASE) == mix(reg=2)
        assert delta.get(Feature.IN_ORDER) == mix(mem=1)

    def test_diff_drops_zero_deltas(self):
        matrix = CostMatrix()
        matrix.add(Feature.BASE, mix(reg=5))
        delta = matrix.diff(matrix.snapshot())
        assert list(delta.features()) == []

    def test_equality(self):
        a = CostMatrix({Feature.BASE: mix(reg=1)})
        b = CostMatrix({Feature.BASE: mix(reg=1)})
        assert a == b
        b.add(Feature.BASE, mix(reg=1))
        assert a != b

    def test_equality_treats_missing_as_zero(self):
        a = CostMatrix()
        b = CostMatrix({Feature.BASE: mix()})
        assert a == b

    def test_reset(self):
        matrix = CostMatrix({Feature.BASE: mix(reg=1)})
        matrix.reset()
        assert matrix.total == 0


@given(
    charges=st.lists(
        st.tuples(
            st.sampled_from(list(Feature)),
            st.integers(0, 50),
            st.integers(0, 50),
            st.integers(0, 50),
        ),
        max_size=30,
    )
)
def test_matrix_total_equals_sum_of_charges(charges):
    matrix = CostMatrix()
    expected = 0
    for feature, r, m, d in charges:
        matrix.add(feature, mix(r, m, d))
        expected += r + m + d
    assert matrix.total == expected
    assert matrix.overhead_total <= matrix.total
