"""Tests for machine presets."""

import pytest

from repro import InOrderDelivery, run_finite_sequence, run_indefinite_sequence
from repro.presets import CM5, CM5E, INTEGRATED, get_preset, setup


class TestPresets:
    def test_registry(self):
        assert get_preset("cm5") is CM5
        assert get_preset("cm5e") is CM5E
        with pytest.raises(KeyError):
            get_preset("cm6")

    def test_cm5_reproduces_paper(self):
        sim, src, dst, _net, costs = setup(CM5, delivery_factory=InOrderDelivery)
        result = run_finite_sequence(sim, src, dst, 16, costs=costs)
        assert result.total == 397

    def test_cm5e_larger_packets_cut_cost(self):
        sim, src, dst, _net, costs = setup(CM5E, delivery_factory=InOrderDelivery)
        cm5e = run_finite_sequence(sim, src, dst, 1024, costs=costs)
        sim2, src2, dst2, _net2, costs2 = setup(CM5, delivery_factory=InOrderDelivery)
        cm5 = run_finite_sequence(sim2, src2, dst2, 1024, costs=costs2)
        assert cm5e.completed and cm5.completed
        assert cm5e.total < cm5.total
        # ... but the overhead fraction falls only modestly (Figure 8).
        assert cm5e.overhead_fraction > 0.08

    def test_cm5e_stream_overhead_still_large(self):
        sim, src, dst, _net, costs = setup(CM5E)
        result = run_indefinite_sequence(sim, src, dst, 1024, costs=costs)
        assert result.overhead_fraction > 0.5

    def test_integrated_cycle_model(self):
        assert INTEGRATED.cycle_model.dev_weight == 1.0
        assert CM5.cycle_model.dev_weight == 5.0

    def test_cr_substrate(self):
        from repro import run_cr_finite_sequence

        sim, src, dst, net, costs = setup(CM5, substrate="cr")
        assert net.provides_in_order
        result = run_cr_finite_sequence(sim, src, dst, 16, costs=costs)
        assert result.completed

    def test_unknown_substrate(self):
        with pytest.raises(KeyError):
            setup(CM5, substrate="ethernet")
