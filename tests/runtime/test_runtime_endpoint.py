"""Tests for RuntimeEndpoint's fire-and-forget send path and close.

Covers the regression fix for ``post_frame``: the created tasks used to
hold no strong reference (asyncio could garbage-collect them mid-flight)
and any exception they raised was silently swallowed as a
never-retrieved task exception.
"""

import asyncio
import gc

from repro.runtime.endpoint import RuntimeEndpoint
from repro.runtime.frames import data_frame
from repro.runtime.transport import LoopbackHub


class _ExplodingTransport:
    """A transport whose send always raises, for surfacing-path tests."""

    provides_in_order = False
    provides_reliability = False
    local_address = "boom"

    def __init__(self):
        self.receiver = None

    def set_receiver(self, receiver):
        self.receiver = receiver

    async def send(self, dst, data):
        raise OSError("wire on fire")

    async def close(self):
        pass


class _StallingTransport(_ExplodingTransport):
    """A transport whose send blocks until released."""

    def __init__(self):
        super().__init__()
        self.release = None  # created lazily on the running loop
        self.sends = 0

    async def send(self, dst, data):
        if self.release is None:
            self.release = asyncio.Event()
        await self.release.wait()
        self.sends += 1


class TestPostFrame:
    def test_posted_tasks_are_strongly_referenced_until_done(self, drive):
        """Regression: without the strong-reference set, a GC pass could
        collect a posted task before its send ran."""

        async def body():
            transport = _StallingTransport()
            ep = RuntimeEndpoint(transport, name="src")
            frame = data_frame(channel=1, seq=0, payload=[1, 2])
            tasks = [ep.post_frame("dst", frame) for _ in range(4)]
            del tasks                    # caller keeps nothing
            await asyncio.sleep(0)       # let the sends start and stall
            pending_during = ep.pending_posts
            gc.collect()                 # must not reap the stalled tasks
            transport.release.set()
            for _ in range(100):
                if ep.pending_posts == 0:
                    break
                await asyncio.sleep(0.002)
            return pending_during, ep.pending_posts, transport.sends

        pending_during, pending_after, sends = drive(body())
        assert pending_during == 4
        assert pending_after == 0
        assert sends == 4

    def test_posted_send_errors_surface_to_the_counter(self, drive):
        """Regression: a raised posted send was a swallowed task
        exception — invisible to callers and to the event loop."""

        async def body():
            unhandled = []
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda _loop, ctx: unhandled.append(ctx)
            )
            ep = RuntimeEndpoint(_ExplodingTransport(), name="src")
            frame = data_frame(channel=1, seq=0, payload=[1])
            ep.post_frame("dst", frame)
            for _ in range(100):
                if ep.send_errors:
                    break
                await asyncio.sleep(0.002)
            await asyncio.sleep(0.01)    # let stray exceptions surface
            return ep.send_errors, ep.pending_posts, unhandled

        errors, pending, unhandled = drive(body())
        assert errors == 1
        assert pending == 0
        assert unhandled == []

    def test_close_waits_for_inflight_posts(self, drive):
        """close() must not turn pending posted sends into packet loss."""

        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            ep = RuntimeEndpoint(a, name="src")
            got = []
            b.set_receiver(lambda data, src: got.append(data))
            frame = data_frame(channel=1, seq=0, payload=[7])
            ep.post_frame("b", frame)
            await ep.close()
            await asyncio.sleep(0.01)
            return len(got), ep.pending_posts

        delivered, pending = drive(body())
        assert delivered == 1
        assert pending == 0

    def test_close_cancels_a_send_stuck_past_the_grace_period(self, drive):
        async def body():
            transport = _StallingTransport()
            ep = RuntimeEndpoint(transport, name="src")
            frame = data_frame(channel=1, seq=0, payload=[1])
            ep.post_frame("dst", frame)
            await asyncio.sleep(0)       # the send reaches its stall
            # Nobody releases it: close's bounded wait must cancel.
            await asyncio.wait_for(ep.close(), 5.0)
            return ep.pending_posts, transport.sends

        assert drive(body()) == (0, 0)
