"""Tests for RuntimeEndpoint's batched send path and close.

The fire-and-forget path used to create one asyncio task per posted
frame (no strong reference, swallowed exceptions, and — the deeper
hazard — no ordering guarantee between two tasks for the same channel).
Frames now join a per-destination FIFO queue drained by one flush per
event-loop tick; these tests pin the surface guarantees: errors surface
to a counter, close never drops queued frames, and a stuck transport
cannot hang close forever.
"""

import asyncio
import gc

from repro.runtime.endpoint import RuntimeEndpoint
from repro.runtime.frames import data_frame
from repro.runtime.transport import LoopbackHub


class _ExplodingTransport:
    """A transport whose send always raises, for surfacing-path tests."""

    provides_in_order = False
    provides_reliability = False
    local_address = "boom"

    def __init__(self):
        self.receiver = None

    def set_receiver(self, receiver):
        self.receiver = receiver

    async def send(self, dst, data):
        raise OSError("wire on fire")

    async def close(self):
        pass


class _StallingTransport(_ExplodingTransport):
    """A transport whose send blocks until released."""

    def __init__(self):
        super().__init__()
        self.release = None  # created lazily on the running loop
        self.sends = 0

    async def send(self, dst, data):
        if self.release is None:
            self.release = asyncio.Event()
        await self.release.wait()
        self.sends += 1


class TestPostFrame:
    def test_queued_frames_survive_gc_and_drain_in_order(self, drive):
        """Regression: posted frames must not be lost to a GC pass (the
        old per-frame tasks were only weakly referenced by asyncio)."""

        async def body():
            transport = _StallingTransport()
            ep = RuntimeEndpoint(transport, name="src")
            frame = data_frame(channel=1, seq=0, payload=[1, 2])
            for _ in range(4):
                ep.post_frame("dst", frame)
            pending_queued = ep.pending_posts
            await asyncio.sleep(0)       # flush runs, drainer spawns
            await asyncio.sleep(0)       # drainer reaches its stall
            gc.collect()                 # must not reap the drainer
            pending_during = ep.pending_posts
            transport.release.set()
            for _ in range(100):
                if ep.pending_posts == 0:
                    break
                await asyncio.sleep(0.002)
            return pending_queued, pending_during, ep.pending_posts, transport.sends

        queued, during, after, sends = drive(body())
        assert queued == 4
        assert during >= 1   # still accounted while the transport stalls
        assert after == 0
        # An async-only transport gets the queued run as one container.
        assert sends == 1

    def test_posted_send_errors_surface_to_the_counter(self, drive):
        """Regression: a raised posted send was a swallowed task
        exception — invisible to callers and to the event loop."""

        async def body():
            unhandled = []
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda _loop, ctx: unhandled.append(ctx)
            )
            ep = RuntimeEndpoint(_ExplodingTransport(), name="src")
            frame = data_frame(channel=1, seq=0, payload=[1])
            ep.post_frame("dst", frame)
            for _ in range(100):
                if ep.send_errors:
                    break
                await asyncio.sleep(0.002)
            await asyncio.sleep(0.01)    # let stray exceptions surface
            return ep.send_errors, ep.pending_posts, unhandled

        errors, pending, unhandled = drive(body())
        assert errors == 1
        assert pending == 0
        assert unhandled == []

    def test_close_waits_for_inflight_posts(self, drive):
        """close() must not turn pending posted sends into packet loss."""

        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            ep = RuntimeEndpoint(a, name="src")
            got = []
            b.set_receiver(lambda data, src: got.append(data))
            frame = data_frame(channel=1, seq=0, payload=[7])
            ep.post_frame("b", frame)
            await ep.close()
            await asyncio.sleep(0.01)
            return len(got), ep.pending_posts

        delivered, pending = drive(body())
        assert delivered == 1
        assert pending == 0

    def test_close_cancels_a_send_stuck_past_the_grace_period(self, drive):
        async def body():
            transport = _StallingTransport()
            ep = RuntimeEndpoint(transport, name="src")
            frame = data_frame(channel=1, seq=0, payload=[1])
            ep.post_frame("dst", frame)
            await asyncio.sleep(0)       # flush; the drainer will stall
            # Nobody releases it: close's bounded wait must cancel.
            await asyncio.wait_for(ep.close(), 5.0)
            return ep.pending_posts, transport.sends

        assert drive(body()) == (0, 0)

    def test_same_destination_frames_stay_in_post_order(self, drive):
        """Regression (the ordering hazard): with one task per posted
        frame, an async transport could interleave two sends for the
        same channel and put them on the wire out of order.  The FIFO
        queue + single drainer makes that impossible by construction."""

        class _YieldingTransport(_ExplodingTransport):
            """First send parks longer than the second: a task-per-frame
            sender emits seq 1 before seq 0."""

            def __init__(self):
                super().__init__()
                self.wire = []
                self._sends = 0

            async def send(self, dst, data):
                self._sends += 1
                if self._sends == 1:
                    await asyncio.sleep(0.02)
                self.wire.append(bytes(data))

        from repro.runtime.frames import decode_frame, is_batch, iter_batch

        async def body():
            transport = _YieldingTransport()
            ep = RuntimeEndpoint(transport, name="src")
            first = data_frame(channel=1, seq=0, payload=[1])
            ep.post_frame("dst", first)
            await asyncio.sleep(0)        # flush tick: first goes alone
            second = data_frame(channel=1, seq=1, payload=[2])
            ep.post_frame("dst", second)
            await asyncio.sleep(0.1)
            seqs = []
            for datagram in transport.wire:
                if is_batch(datagram):
                    seqs.extend(decode_frame(s).seq for s in iter_batch(datagram))
                else:
                    seqs.append(decode_frame(datagram).seq)
            return seqs

        assert drive(body()) == [0, 1]


class TestBatching:
    def test_burst_to_one_peer_coalesces_into_one_datagram(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            ep = RuntimeEndpoint(a, name="src")
            rx = RuntimeEndpoint(b, name="dst")
            got = []
            rx.bind(1, lambda frame, src: got.append(frame.seq))
            for seq in range(6):
                ep.post_frame("b", data_frame(channel=1, seq=seq, payload=[seq]))
            await asyncio.sleep(0.01)
            return (a.datagrams_sent, ep.batches_sent, ep.batched_frames,
                    rx.frames_received, got)

        datagrams, batches, batched, received, got = drive(body())
        assert datagrams == 1
        assert batches == 1
        assert batched == 6
        assert received == 6
        assert got == list(range(6))     # in-order unbundle

    def test_lone_frame_skips_the_container(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            ep = RuntimeEndpoint(a, name="src")
            rx = RuntimeEndpoint(b, name="dst")
            got = []
            rx.bind(1, lambda frame, src: got.append(frame.seq))
            ep.post_frame("b", data_frame(channel=1, seq=5, payload=[1]))
            await asyncio.sleep(0.01)
            return a.datagrams_sent, ep.batches_sent, got

        datagrams, batches, got = drive(body())
        assert datagrams == 1
        assert batches == 0              # singletons ride bare
        assert got == [5]

    def test_distinct_destinations_get_distinct_datagrams(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a = hub.attach("a")
            b, c = hub.attach("b"), hub.attach("c")
            ep = RuntimeEndpoint(a, name="src")
            got_b, got_c = [], []
            RuntimeEndpoint(b, name="b").bind(
                1, lambda frame, src: got_b.append(frame.seq))
            RuntimeEndpoint(c, name="c").bind(
                1, lambda frame, src: got_c.append(frame.seq))
            for seq in range(4):
                ep.post_frame("b", data_frame(channel=1, seq=seq, payload=[1]))
                ep.post_frame("c", data_frame(channel=1, seq=seq, payload=[1]))
            await asyncio.sleep(0.01)
            return a.datagrams_sent, got_b, got_c

        datagrams, got_b, got_c = drive(body())
        assert datagrams == 2            # one container per destination
        assert got_b == list(range(4))
        assert got_c == list(range(4))
