"""Unit and end-to-end tests for the runtime event tracer."""

import io
import json

import pytest

from repro.arch.attribution import Feature
from repro.runtime.protocols import OrderedChannelReceiver, OrderedChannelSender
from repro.runtime.reliability import BackoffPolicy
from repro.runtime.runner import (
    make_loopback_pair,
    run_bulk_live,
    run_ordered_live,
    run_single_packet_live,
)
from repro.runtime.tracing import (
    DEFAULT_CAPACITY,
    HISTOGRAM_BUCKETS,
    NULL_TRACER,
    Counters,
    EventType,
    LatencyHistogram,
    TraceEvent,
    Tracer,
    export_chrome_trace,
    export_jsonl,
)

FAST = BackoffPolicy(initial=0.01, factor=1.5, ceiling=0.05, max_retries=8)


class TestTracer:
    def test_emit_records_events_in_order(self):
        tracer = Tracer(capacity=16)
        tracer.emit(EventType.SEND, endpoint="src", channel=1, seq=7,
                    kind="DATA", feature=Feature.BASE)
        tracer.emit(EventType.RECV, endpoint="dst", channel=1, seq=7,
                    kind="DATA")
        events = tracer.events()
        assert [e.etype for e in events] == [EventType.SEND, EventType.RECV]
        assert events[0].ts_ns <= events[1].ts_ns
        assert events[0].seq == 7
        assert events[0].feature is Feature.BASE
        assert len(tracer) == 2

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(capacity=8, enabled=False)
        tracer.emit(EventType.SEND, endpoint="src")
        assert tracer.events() == []
        assert tracer.recorded == 0

    def test_null_tracer_is_disabled_and_shared(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(EventType.SEND, endpoint="src")
        assert NULL_TRACER.recorded == 0

    def test_empty_tracer_is_falsy_but_still_usable(self):
        """len()==0 makes a fresh tracer falsy — consumers must test
        `is not None`, never truthiness (regression guard)."""
        tracer = Tracer(capacity=8)
        assert not tracer  # empty ring
        assert tracer.enabled

    def test_enabled_tracer_needs_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0, enabled=True)

    def test_ring_wraps_keeping_newest(self):
        tracer = Tracer(capacity=4)
        for seq in range(10):
            tracer.emit(EventType.SEND, endpoint="src", seq=seq)
        events = tracer.events()
        assert len(events) == 4
        assert [e.seq for e in events] == [6, 7, 8, 9]
        assert tracer.recorded == 10
        assert tracer.overwritten == 6

    def test_clear_resets_ring_and_histograms(self):
        tracer = Tracer(capacity=4)
        tracer.emit(EventType.SEND, endpoint="src")
        tracer.on_charge(Feature.BASE, 100)
        tracer.clear()
        assert tracer.events() == []
        assert tracer.feature_totals()[Feature.BASE] == 0

    def test_on_charge_feeds_feature_histograms(self):
        tracer = Tracer(capacity=4)
        tracer.on_charge(Feature.IN_ORDER, 1000)
        tracer.on_charge(Feature.IN_ORDER, 3000)
        totals = tracer.feature_totals()
        assert totals[Feature.IN_ORDER] == 4000
        assert tracer.feature_hists[Feature.IN_ORDER].count == 2

    def test_default_capacity_is_sane(self):
        assert Tracer().recorded == 0
        assert DEFAULT_CAPACITY >= 1024


class TestCounters:
    def test_inc_and_get(self):
        counters = Counters()
        assert counters.inc("x") == 1
        assert counters.inc("x", 4) == 5
        assert counters.get("x") == 5
        assert counters.get("missing") == 0

    def test_scoped_view_prefixes_into_the_root(self):
        root = Counters()
        rx = root.scoped("stream_rx")
        rx.inc("acks_sent", 2)
        nested = rx.scoped("rtx")
        nested.inc("retransmissions")
        assert root.get("stream_rx.acks_sent") == 2
        assert root.get("stream_rx.rtx.retransmissions") == 1
        assert rx.to_dict() == {"acks_sent": 2, "rtx.retransmissions": 1}
        assert root.to_dict() == {
            "stream_rx.acks_sent": 2,
            "stream_rx.rtx.retransmissions": 1,
        }


class TestLatencyHistogram:
    def test_records_exact_totals(self):
        hist = LatencyHistogram()
        for ns in (100, 200, 400, 800):
            hist.record(ns)
        assert hist.count == 4
        assert hist.total_ns == 1500
        assert hist.min_ns == 100
        assert hist.max_ns == 800

    def test_percentiles_bracket_the_data(self):
        hist = LatencyHistogram()
        for ns in range(1000, 2000, 10):
            hist.record(ns)
        assert 1000 <= hist.p50 <= 2000
        assert hist.p50 <= hist.p90 <= hist.p99 <= hist.max_ns
        assert hist.percentile(1.0) == hist.max_ns
        assert hist.percentile(0.0) >= hist.min_ns

    def test_zero_and_huge_values_clamp_to_the_bucket_range(self):
        hist = LatencyHistogram()
        hist.record(0)
        hist.record(1 << 50)  # beyond the last bucket boundary
        assert hist.count == 2
        assert hist.max_ns == 1 << 50
        assert sum(hist._counts) == 2
        assert len(hist._counts) == HISTOGRAM_BUCKETS

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().record(-1)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.p50 == 0
        assert hist.mean_ns == 0.0
        assert hist.to_dict()["count"] == 0

    def test_empty_percentiles_are_zero_at_every_quantile(self):
        hist = LatencyHistogram()
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == 0

    def test_single_sample_is_every_percentile(self):
        hist = LatencyHistogram()
        hist.record(777)
        assert hist.p50 == 777
        assert hist.p90 == 777
        assert hist.p99 == 777
        assert hist.mean_ns == 777.0
        assert hist.min_ns == hist.max_ns == 777

    def test_overflow_bucket_collects_everything_past_the_top(self):
        # Bucket index is clamped at HISTOGRAM_BUCKETS - 1, so any value
        # with bit_length > HISTOGRAM_BUCKETS shares the last bucket.
        hist = LatencyHistogram()
        top = 1 << (HISTOGRAM_BUCKETS - 1)
        for ns in (top, top * 2, top * 1000):
            hist.record(ns)
        assert hist._counts[-1] == 3
        assert sum(hist._counts[:-1]) == 0
        # Interpolation caps at the overflow bucket's upper edge, so
        # percentiles stay bounded even when the data does not.
        assert hist.min_ns <= hist.p50 <= hist.max_ns
        assert hist.percentile(1.0) == 1 << HISTOGRAM_BUCKETS
        assert hist.percentile(1.0) <= hist.max_ns

    def test_percentile_rejects_out_of_range_quantiles(self):
        hist = LatencyHistogram()
        hist.record(10)
        with pytest.raises(ValueError):
            hist.percentile(-0.01)
        with pytest.raises(ValueError):
            hist.percentile(1.01)


class TestExporters:
    def _events(self):
        tracer = Tracer(capacity=8, label="finite/cm5")
        tracer.emit(EventType.SEND, endpoint="src", channel=2, seq=1,
                    aux=0, kind="DATA", feature=Feature.BASE)
        tracer.emit(EventType.RETRANSMIT, endpoint="src", channel=2, seq=1,
                    aux=0, attempt=1, kind="data",
                    feature=Feature.FAULT_TOLERANCE)
        tracer.emit(EventType.RECV, endpoint="dst", channel=2, seq=1,
                    aux=0, kind="DATA")
        return tracer.events()

    def test_jsonl_round_trips(self):
        buffer = io.StringIO()
        count = export_jsonl(self._events(), buffer)
        lines = buffer.getvalue().splitlines()
        assert count == len(lines) == 3
        first = json.loads(lines[0])
        assert first["event"] == "SEND"
        assert first["label"] == "finite/cm5"
        assert first["feature"] == "base"
        assert json.loads(lines[1])["attempt"] == 1

    def test_chrome_trace_structure(self):
        buffer = io.StringIO()
        spans = [{"name": "rtt ch2 seq 1+0", "track": "finite/cm5:src",
                  "start_ns": self._events()[0].ts_ns, "dur_ns": 5000,
                  "args": {"seq": 1}}]
        export_chrome_trace(self._events(), buffer, spans=spans)
        payload = json.loads(buffer.getvalue())
        events = payload["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("i") == 3
        assert phases.count("X") == 1
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"finite/cm5:src", "finite/cm5:dst"}
        # Timestamps are relative microseconds: all non-negative.
        assert all(e["ts"] >= 0 for e in events if e["ph"] != "M")
        duration = next(e for e in events if e["ph"] == "X")
        assert duration["dur"] == pytest.approx(5.0)

    def test_chrome_trace_of_nothing_is_still_loadable(self):
        buffer = io.StringIO()
        export_chrome_trace([], buffer)
        payload = json.loads(buffer.getvalue())
        assert payload["traceEvents"]  # process_name metadata at least


class TestEndToEnd:
    def test_traced_single_packet_run_yields_lifecycle_events(self, drive):
        async def body():
            tracer = Tracer(label="single/cm5")
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.0,
                                      tracer=tracer)
            try:
                result = await run_single_packet_live(
                    pair, message_words=32, packet_words=16, backoff=FAST)
            finally:
                await pair.close()
            return result, tracer

        result, tracer = drive(body())
        assert result.completed
        etypes = {e.etype for e in tracer.events()}
        assert {EventType.SEND, EventType.RECV, EventType.DELIVER,
                EventType.ACK_TX, EventType.ACK_RX} <= etypes
        sends = [e for e in tracer.events() if e.etype is EventType.SEND]
        assert all(e.kind == "DATA" and e.label == "single/cm5"
                   for e in sends)

    def test_traced_lossy_run_emits_retransmit_and_timer_events(self, drive):
        async def body():
            tracer = Tracer(label="finite/cm5")
            pair = make_loopback_pair(mode="cm5", drop_rate=0.4,
                                      reorder_rate=0.0, seed=7,
                                      tracer=tracer)
            try:
                result = await run_bulk_live(
                    pair, message_words=128, packet_words=16, backoff=FAST)
            finally:
                await pair.close()
            return result, tracer

        result, tracer = drive(body())
        assert result.completed
        etypes = [e.etype for e in tracer.events()]
        assert EventType.RETRANSMIT in etypes
        assert EventType.TIMER_FIRE in etypes
        rtx = next(e for e in tracer.events()
                   if e.etype is EventType.RETRANSMIT)
        assert rtx.attempt >= 1
        assert rtx.feature is Feature.FAULT_TOLERANCE

    def test_traced_blackhole_run_emits_give_up(self, drive):
        from repro.runtime import ProtocolFailure

        async def body():
            tracer = Tracer(label="single/cm5")
            pair = make_loopback_pair(mode="cm5", drop_rate=1.0,
                                      reorder_rate=0.0, tracer=tracer)
            try:
                with pytest.raises(ProtocolFailure):
                    await run_single_packet_live(
                        pair, message_words=16, packet_words=16,
                        deadline=5.0, backoff=FAST)
            finally:
                await pair.close()
            return tracer

        tracer = drive(body())
        give_ups = [e for e in tracer.events()
                    if e.etype is EventType.GIVE_UP]
        assert give_ups
        assert give_ups[0].feature is Feature.FAULT_TOLERANCE

    def test_traced_reordered_stream_emits_park_and_unpark(self, drive):
        async def body():
            tracer = Tracer(label="indefinite/cm5")
            # 1024 words / seed 7: enough container datagrams in flight
            # that the seeded reorder pattern delays one container past
            # its successor (frames inside one container never reorder).
            pair = make_loopback_pair(mode="cm5", drop_rate=0.0,
                                      reorder_rate=0.5, seed=7,
                                      tracer=tracer)
            try:
                result = await run_ordered_live(
                    pair, message_words=1024, packet_words=16, backoff=FAST)
            finally:
                await pair.close()
            return result, tracer

        result, tracer = drive(body())
        assert result.completed
        etypes = [e.etype for e in tracer.events()]
        assert EventType.PARK in etypes
        assert EventType.UNPARK in etypes
        parks = [e.seq for e in tracer.events()
                 if e.etype is EventType.PARK]
        unparks = [e.seq for e in tracer.events()
                   if e.etype is EventType.UNPARK]
        assert set(parks) == set(unparks)

    def test_histogram_totals_shadow_attribution_buckets(self, drive):
        """The tracer's on_charge histograms must reconcile (exactly,
        mid-run) with the TimeAttribution buckets they observe."""
        async def body():
            tracer = Tracer(label="indefinite/cr")
            pair = make_loopback_pair(mode="cr", tracer=tracer)
            try:
                result = await run_ordered_live(
                    pair, message_words=256, packet_words=16)
                buckets = {}
                for feature in Feature:
                    buckets[feature] = (pair.src.attribution.ns(feature)
                                        + pair.dst.attribution.ns(feature))
                return result, tracer.feature_totals(), buckets
            finally:
                await pair.close()

        result, hist_totals, buckets = drive(body())
        assert result.completed
        for feature in Feature:
            assert hist_totals[feature] == buckets[feature]

    def test_untraced_run_keeps_null_tracer(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                assert pair.src.tracer is NULL_TRACER
                assert pair.src.attribution.on_charge is None
                result = await run_single_packet_live(
                    pair, message_words=16, packet_words=16)
            finally:
                await pair.close()
            return result

        assert drive(body()).completed

    def test_endpoint_counters_cover_protocol_scopes(self, drive):
        """One endpoint registry dump names every component's tallies."""
        async def body():
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.5, seed=5)
            try:
                receiver = OrderedChannelReceiver(pair.dst, window=64)
                sender = OrderedChannelSender(pair.src, "dst", window=8,
                                              backoff=FAST)
                arrival = receiver.expect(8)
                for i in range(8):
                    await sender.send([i])
                await sender.drain(timeout=10.0)
                await arrival
                await sender.close()
                receiver.close()
                return pair.src.counters.to_dict(), pair.dst.counters.to_dict()
            finally:
                await pair.close()

        src_counts, dst_counts = drive(body())
        assert src_counts["frames_sent"] >= 8
        assert dst_counts["stream_rx.arrivals"] >= 8
        assert dst_counts["stream_rx.acks_sent"] >= 1
        assert "frames_received" in dst_counts
