"""Fabric collectives: eager/rendezvous switching, admission, chaos.

Covers the protocol-switch boundary exactly (at the threshold, one
word either side), every collective op in both substrate modes with a
clean exactly-once audit, rendezvous admission (immediate and
deferred grants), membership safety (typed errors instead of hangs),
and the broadcast-through-partition chaos scenario.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.collectives import (
    AUDIT_CID,
    CH_COLLECTIVE,
    CollectiveConfig,
    CollectiveError,
    CollectiveGroup,
    CollectiveMembershipError,
    EAGER,
    RENDEZVOUS,
    run_broadcast_partition,
)
from repro.runtime.fabric import Fabric
from repro.runtime.flowcontrol import RendezvousAdmission
from repro.runtime.loadgen import AuditLedger
from repro.runtime.tracing import EventType, Tracer


def make_fabric(mode: str = "cr", tracer=None, **faults) -> Fabric:
    return Fabric(mode=mode, tracer=tracer, **faults)


async def fabric_with_peers(names, mode="cr", tracer=None, **faults):
    fabric = make_fabric(mode=mode, tracer=tracer, **faults)
    for name in names:
        await fabric.add_peer(name)
    return fabric


class TestProtocolSwitch:
    """The eager/rendezvous decision, pinned at the boundary."""

    def test_payload_at_threshold_stays_eager(self):
        cfg = CollectiveConfig(eager_threshold_words=256)
        assert cfg.mode_for(256) == EAGER

    def test_payload_one_past_threshold_goes_rendezvous(self):
        cfg = CollectiveConfig(eager_threshold_words=256)
        assert cfg.mode_for(257) == RENDEZVOUS

    def test_payload_one_short_of_threshold_stays_eager(self):
        cfg = CollectiveConfig(eager_threshold_words=256)
        assert cfg.mode_for(255) == EAGER

    def test_forced_protocols_ignore_size(self):
        eager = CollectiveConfig(protocol="eager",
                                 eager_threshold_words=8)
        rdv = CollectiveConfig(protocol="rendezvous",
                               eager_threshold_words=8)
        assert eager.mode_for(10_000) == EAGER
        assert rdv.mode_for(1) == RENDEZVOUS

    def test_transfers_at_the_boundary_use_the_decided_mode(self, drive):
        """A broadcast exactly at the threshold runs eager end to end;
        one word more and the same group runs rendezvous."""
        async def scenario():
            fabric = await fabric_with_peers(["a", "b"])
            cfg = CollectiveConfig(eager_threshold_words=32)
            group = CollectiveGroup(fabric, config=cfg)
            try:
                at = await group.broadcast("a", list(range(32)))
                past = await group.broadcast("a", list(range(33)))
                return at, past
            finally:
                await group.close()
                await fabric.close()

        at, past = drive(scenario())
        assert at.completed and at.modes == (EAGER,)
        assert past.completed and past.modes == (RENDEZVOUS,)
        rdv = past.transfers[0]
        assert rdv.handshake_ns > 0      # a real GRANT round-trip
        assert at.transfers[0].handshake_ns == 0

    def test_nonsense_configs_are_rejected(self):
        with pytest.raises(ValueError):
            CollectiveConfig(protocol="psychic")
        with pytest.raises(ValueError):
            CollectiveConfig(eager_threshold_words=0)


class TestCollectiveOps:
    """All three collectives complete with verified payloads."""

    @pytest.mark.parametrize("mode", ["cr", "cm5"])
    def test_broadcast_delivers_to_every_member(self, drive, mode):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c", "d"],
                                             mode=mode)
            group = fabric.collective()
            try:
                return await group.broadcast("a", list(range(100)))
            finally:
                await group.close()
                await fabric.close()

        result = drive(scenario())
        assert result.completed
        assert set(result.received) == {"a", "b", "c", "d"}
        assert all(words == list(range(100))
                   for words in result.received.values())

    @pytest.mark.parametrize("mode", ["cr", "cm5"])
    def test_scatter_routes_each_chunk_to_its_member(self, drive, mode):
        chunks = {"a": [1], "b": [2, 3], "c": [4, 5, 6]}

        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c"], mode=mode)
            group = fabric.collective()
            try:
                return await group.scatter("a", chunks)
            finally:
                await group.close()
                await fabric.close()

        result = drive(scenario())
        assert result.completed
        assert result.received == chunks

    @pytest.mark.parametrize("mode", ["cr", "cm5"])
    def test_gather_collects_every_contribution(self, drive, mode):
        values = {"a": [9], "b": [10, 11], "c": [12]}

        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c"], mode=mode)
            group = fabric.collective()
            try:
                return await group.gather("a", values)
            finally:
                await group.close()
                await fabric.close()

        result = drive(scenario())
        assert result.completed
        assert result.received == values

    @pytest.mark.parametrize("mode", ["cr", "cm5"])
    def test_all_reduce_reduces_and_redistributes(self, drive, mode):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c"], mode=mode)
            group = fabric.collective()
            try:
                return await group.all_reduce(
                    {"a": [1, 2], "b": [3, 4], "c": [5, 6]})
            finally:
                await group.close()
                await fabric.close()

        result = drive(scenario())
        assert result.completed
        assert result.result == [9, 12]
        assert all(v == [9, 12] for v in result.received.values())

    def test_all_reduce_runs_both_phases_over_rendezvous(self, drive):
        """Above the threshold, both the reduce and the redistribute
        phase ride the bulk protocol — 2·(N−1) rendezvous legs."""
        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c"])
            cfg = CollectiveConfig(eager_threshold_words=64)
            group = CollectiveGroup(fabric, config=cfg)
            try:
                return await group.all_reduce(
                    {n: [i] * 100 for i, n in enumerate(["a", "b", "c"])})
            finally:
                await group.close()
                await fabric.close()

        result = drive(scenario())
        assert result.completed
        assert len(result.transfers) == 4
        assert set(t.mode for t in result.transfers) == {RENDEZVOUS}
        assert all(t.handshake_ns > 0 for t in result.transfers)

    def test_all_reduce_rejects_mismatched_vectors(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b"])
            group = fabric.collective()
            try:
                with pytest.raises(CollectiveError):
                    await group.all_reduce({"a": [1, 2], "b": [3]})
                with pytest.raises(CollectiveError):
                    await group.all_reduce({"a": [1]})
                with pytest.raises(CollectiveError):
                    await group.all_reduce({"a": [1], "b": [2]},
                                           op="median")
            finally:
                await group.close()
                await fabric.close()

        drive(scenario())

    def test_audited_broadcast_is_exactly_once(self, drive):
        """Deterministic ledger stamps make a broadcast auditable per
        receiving peer: identical words, independent verdicts."""
        async def scenario():
            fabric = await fabric_with_peers(["r", "x", "y"], mode="cm5",
                                             drop_rate=0.05)
            group = fabric.collective()
            ledgers = {p: AuditLedger() for p in ("x", "y")}
            try:
                for rnd in range(4):
                    filler = [rnd * 7 + i for i in range(29)]
                    words = None
                    for peer in ("x", "y"):
                        words = ledgers[peer].stamp(AUDIT_CID, rnd, filler)
                    result = await group.broadcast("r", words)
                    for peer in ("x", "y"):
                        ledgers[peer].record_delivery(
                            AUDIT_CID, result.received[peer])
                return {p: lg.verdict() for p, lg in ledgers.items()}
            finally:
                await group.close()
                await fabric.close()

        reports = drive(scenario())
        for report in reports.values():
            assert report.clean
            assert report.delivered == 4


class TestRendezvousAdmission:
    """The bounded bulk budget behind COLL_GRANT."""

    def test_try_admit_respects_the_budget(self):
        adm = RendezvousAdmission(100)
        assert adm.try_admit(60)
        assert not adm.try_admit(50)
        adm.release(60)
        assert adm.try_admit(50)

    def test_oversized_transfer_admits_alone(self):
        """A transfer bigger than the whole budget must not deadlock —
        it is admitted when nothing else holds a grant."""
        adm = RendezvousAdmission(100)
        assert adm.try_admit(500)
        assert not adm.try_admit(1)
        adm.release(500)
        assert adm.try_admit(1)

    def test_admit_blocks_until_release(self, drive):
        async def scenario():
            adm = RendezvousAdmission(100)
            assert adm.try_admit(80)
            waiter = asyncio.ensure_future(adm.admit(40))
            await asyncio.sleep(0.01)
            assert not waiter.done()
            adm.release(80)
            await asyncio.wait_for(waiter, 1.0)
            assert adm.granted_bytes == 40
            assert adm.deferred >= 1

        drive(scenario())

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            RendezvousAdmission(0)

    def test_concurrent_rendezvous_transfers_defer_grants(self, drive):
        """A budget smaller than the combined fan-out forces at least
        one grant to wait for a release — and everything still
        completes."""
        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c", "d", "e"])
            cfg = CollectiveConfig(protocol="rendezvous",
                                   max_bulk_bytes=1)
            group = CollectiveGroup(fabric, config=cfg)
            try:
                # scatter: four concurrent rendezvous legs from "a",
                # each toward a different receiver (budgets are
                # per-receiver, so defer by making each leg bigger
                # than its receiver's whole budget is impossible —
                # instead gather four legs INTO one receiver).
                result = await group.gather(
                    "a", {n: [7] * 200 for n in fabric.peer_names})
                return result, group.grants_deferred
            finally:
                await group.close()
                await fabric.close()

        result, deferred = drive(scenario())
        assert result.completed
        assert all(v == [7] * 200 for p, v in result.received.items()
                   if p != "a")
        # 4 concurrent 800-byte legs against a 1-byte budget at "a":
        # one admits (empty-budget rule), the rest must defer.
        assert deferred >= 1


class TestMembershipSafety:
    """Collectives fail loudly, never hang, on membership trouble."""

    def test_group_needs_two_members(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["solo"])
            try:
                with pytest.raises(CollectiveError):
                    fabric.collective()
            finally:
                await fabric.close()

        drive(scenario())

    def test_unknown_member_rejected_at_creation(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b"])
            try:
                with pytest.raises(CollectiveMembershipError):
                    fabric.collective(["a", "b", "ghost"])
            finally:
                await fabric.close()

        drive(scenario())

    def test_departed_member_fails_the_op_with_typed_error(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c"])
            group = fabric.collective()
            await group.broadcast("a", [1, 2, 3])
            await fabric.remove_peer("c", drain=False)
            try:
                with pytest.raises(CollectiveMembershipError):
                    await group.broadcast("a", [4, 5, 6])
            finally:
                await group.close()
                await fabric.close()

        drive(scenario())

    def test_crashed_member_fails_the_op_with_typed_error(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c"], mode="cm5")
            group = fabric.collective()
            await fabric.crash_peer("b")
            try:
                with pytest.raises(CollectiveMembershipError):
                    await group.gather("a", {"b": [1], "c": [2]})
            finally:
                await group.close()
                await fabric.close()

        drive(scenario())

    def test_non_member_root_rejected(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b", "c"])
            group = fabric.collective(["a", "b"])
            try:
                with pytest.raises(CollectiveError):
                    await group.broadcast("c", [1])
            finally:
                await group.close()
                await fabric.close()

        drive(scenario())

    def test_closed_group_rejects_ops_and_frees_the_channel(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b"])
            group = fabric.collective()
            await group.broadcast("a", [1])
            await group.close()
            with pytest.raises(CollectiveError):
                await group.broadcast("a", [2])
            # The control channel is free again: a second group binds.
            group2 = fabric.collective()
            result = await group2.broadcast("b", [3])
            await group2.close()
            await fabric.close()
            return result

        assert drive(scenario()).completed

    def test_empty_payload_rejected(self, drive):
        async def scenario():
            fabric = await fabric_with_peers(["a", "b"])
            group = fabric.collective()
            try:
                with pytest.raises(CollectiveError):
                    await group.broadcast("a", [])
            finally:
                await group.close()
                await fabric.close()

        drive(scenario())


class TestCollectiveTracing:
    """COLL_BEGIN/COLL_END bracket each op in the trace."""

    def test_ops_emit_begin_and_end_events(self, drive):
        tracer = Tracer(capacity=4096)

        async def scenario():
            fabric = await fabric_with_peers(["a", "b"], tracer=tracer)
            group = fabric.collective()
            try:
                await group.broadcast("a", list(range(16)))
                await group.broadcast("a", list(range(700)))
            finally:
                await group.close()
                await fabric.close()

        drive(scenario())
        events = tracer.events()
        begins = [e for e in events if e.etype is EventType.COLL_BEGIN]
        ends = [e for e in events if e.etype is EventType.COLL_END]
        assert len(begins) == 2 and len(ends) == 2
        assert all(e.kind == "broadcast" for e in begins + ends)
        assert all(e.channel == CH_COLLECTIVE for e in begins + ends)
        assert all(e.dur_ns > 0 for e in ends)

    def test_control_frames_appear_on_the_collective_channel(self, drive):
        tracer = Tracer(capacity=8192)

        async def scenario():
            fabric = await fabric_with_peers(["a", "b"], tracer=tracer)
            group = fabric.collective(
                config=CollectiveConfig(protocol="rendezvous"))
            try:
                await group.broadcast("a", list(range(64)))
            finally:
                await group.close()
                await fabric.close()

        drive(scenario())
        kinds = {e.kind for e in tracer.events()
                 if e.channel == CH_COLLECTIVE
                 and e.etype in (EventType.SEND, EventType.RECV)}
        assert {"COLL_HDR", "COLL_GRANT", "COLL_DONE"} <= kinds


class TestPartitionChaos:
    """A broadcast survives a partition-heal with a clean audit."""

    @pytest.mark.parametrize("mode", ["cm5", "cr"])
    def test_broadcast_through_partition_heal_audits_clean(
            self, drive, mode):
        out = drive(run_broadcast_partition(
            mode=mode, peers=4, rounds=3, payload_words=64,
            heal_after=0.15), timeout=60.0)
        assert out["all_clean"]
        assert out["healed_in_flight"]
        for audit in out["audits"].values():
            assert audit["delivered"] == 3
            assert audit["violations"] == 0
        assert all(rec["complete"] for rec in out["records"])
