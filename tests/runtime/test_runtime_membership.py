"""Tests for SWIM gossip membership: the incarnation update algebra,
the gossip codec and piggyback buffer, and the live detector — crash
detection within the configured bound, graceful leave with zero false
accusations, refutation under latency spikes, and restart rejoining
past absorbing DEAD verdicts.

The graceful-leave test against the *legacy* heartbeat detector is the
regression lock for the ``remove_peer`` bugfix: before the fix the
drain window aged the departed peer into a false SUSPECT/DEAD.
"""

import asyncio

import pytest

from repro.runtime.chaos import (
    ChaosConfig,
    FailureDetector,
    HeartbeatConfig,
    PeerState,
    run_chaos,
)
from repro.runtime.fabric import Fabric
from repro.runtime.frames import (
    FrameError,
    GOSSIP_ALIVE,
    GOSSIP_DEAD,
    GOSSIP_JOIN,
    GOSSIP_LEFT,
    GOSSIP_REFUTE,
    GOSSIP_SUSPECT,
    GOSSIP_UPDATE_WORDS,
    decode_gossip,
    encode_gossip,
)
from repro.runtime.membership import (
    GossipBuffer,
    MemberState,
    MembershipView,
    SwimConfig,
    SwimDetector,
    member_id,
)

#: Detector soaks run scripted sleeps totalling well under a second.
SOAK_TIMEOUT = 25.0


def quick_config() -> SwimConfig:
    """Fast protocol periods so detector soaks finish in ~100s of ms."""
    return SwimConfig(period=0.02, suspect_timeout=0.06)


class TestIncarnationAlgebra:
    """MembershipView.apply is the whole SWIM update algebra; these are
    the incarnation edge cases, exercised without any I/O."""

    def test_unknown_member_installs_at_rumored_state(self):
        view = MembershipView()
        assert view.apply("a", GOSSIP_SUSPECT, 3, 0.0) is MemberState.SUSPECT
        rec = view.record("a")
        assert rec.incarnation == 3

    def test_stale_incarnation_is_ignored(self):
        view = MembershipView()
        view.seed("a", 2, 0.0)
        assert view.apply("a", GOSSIP_DEAD, 1, 0.0) is None
        assert view.state("a") is MemberState.ALIVE
        assert view.record("a").incarnation == 2

    def test_refutation_beats_same_incarnation_suspect(self):
        view = MembershipView()
        view.seed("a", 1, 0.0)
        assert view.apply("a", GOSSIP_SUSPECT, 1, 0.0) is MemberState.SUSPECT
        # Second-hand ALIVE at the same incarnation cannot clear it...
        assert view.apply("a", GOSSIP_ALIVE, 1, 0.0) is None
        assert view.state("a") is MemberState.SUSPECT
        # ...but the accused's first-hand refutation can.
        assert view.apply("a", GOSSIP_REFUTE, 1, 0.0) is MemberState.ALIVE

    def test_refute_is_a_noop_when_already_alive(self):
        view = MembershipView()
        view.seed("a", 1, 0.0)
        assert view.apply("a", GOSSIP_REFUTE, 1, 0.0) is None
        assert view.state("a") is MemberState.ALIVE

    def test_dead_is_absorbing_per_incarnation(self):
        view = MembershipView()
        view.seed("a", 1, 0.0)
        assert view.apply("a", GOSSIP_DEAD, 1, 0.0) is MemberState.DEAD
        for code in (GOSSIP_ALIVE, GOSSIP_SUSPECT, GOSSIP_REFUTE,
                     GOSSIP_LEFT):
            assert view.apply("a", code, 1, 0.0) is None
        assert view.state("a") is MemberState.DEAD

    def test_higher_incarnation_rejoins_past_dead(self):
        view = MembershipView()
        view.seed("a", 1, 0.0)
        view.apply("a", GOSSIP_DEAD, 1, 0.0)
        # The restarted peer announces itself under a bumped
        # incarnation; that must clear the absorbing verdict.
        assert view.apply("a", GOSSIP_JOIN, 2, 1.0) is MemberState.ALIVE
        assert view.record("a").incarnation == 2

    def test_left_is_absorbing_and_severity_orders_same_incarnation(self):
        view = MembershipView()
        view.seed("a", 1, 0.0)
        assert view.apply("a", GOSSIP_LEFT, 1, 0.0) is MemberState.LEFT
        assert view.apply("a", GOSSIP_DEAD, 1, 0.0) is None
        view.seed("b", 1, 0.0)
        assert view.apply("b", GOSSIP_SUSPECT, 1, 0.0) is MemberState.SUSPECT
        assert view.apply("b", GOSSIP_SUSPECT, 1, 0.0) is None  # no re-fire
        assert view.apply("b", GOSSIP_DEAD, 1, 0.0) is MemberState.DEAD


class TestGossipCodec:
    def test_roundtrip(self):
        updates = [(member_id("a"), GOSSIP_SUSPECT, 4),
                   (member_id("b"), GOSSIP_REFUTE, 5)]
        words = encode_gossip(updates)
        assert len(words) == GOSSIP_UPDATE_WORDS * len(updates)
        assert decode_gossip(words) == updates

    def test_ragged_payload_raises(self):
        with pytest.raises(FrameError):
            decode_gossip((1, 2))

    def test_unknown_code_raises(self):
        with pytest.raises(FrameError):
            decode_gossip((member_id("a"), 250, 1))

    def test_buffer_prefers_least_disseminated_and_spends_budget(self):
        cfg = SwimConfig(gossip_piggyback=1, gossip_lambda=1.0)
        buf = GossipBuffer(cfg)
        buf.post("old", (member_id("old"), GOSSIP_SUSPECT, 1), fanout=2)
        buf.take()  # spends one of old's budget
        buf.post("new", (member_id("new"), GOSSIP_DEAD, 1), fanout=2)
        # The fresher rumor has more budget left, so it goes first.
        assert decode_gossip(buf.take()) == [(member_id("new"),
                                              GOSSIP_DEAD, 1)]

    def test_buffer_drops_entry_once_budget_is_spent(self):
        cfg = SwimConfig(gossip_lambda=1.0)
        buf = GossipBuffer(cfg)
        buf.post("a", (member_id("a"), GOSSIP_ALIVE, 1), fanout=2)
        budget = cfg.retransmit_budget(2)
        for _ in range(budget):
            assert buf.take() != ()
        assert buf.take() == ()
        assert len(buf) == 0

    def test_repost_resets_budget(self):
        cfg = SwimConfig(gossip_lambda=1.0)
        buf = GossipBuffer(cfg)
        buf.post("a", (member_id("a"), GOSSIP_SUSPECT, 1), fanout=2)
        buf.take()
        buf.post("a", (member_id("a"), GOSSIP_REFUTE, 1), fanout=2)
        # Replacement rumor, full budget again.
        assert decode_gossip(buf.take()) == [(member_id("a"),
                                              GOSSIP_REFUTE, 1)]


class TestSwimConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SwimConfig(period=0.0)
        with pytest.raises(ValueError):
            SwimConfig(probes=0)
        with pytest.raises(ValueError):
            SwimConfig(suspect_timeout=0.0)

    def test_bounds_are_constants_of_the_config(self):
        cfg = SwimConfig()
        assert cfg.detection_bound == pytest.approx(
            6 * cfg.period + 2 * cfg.suspect_timeout)
        assert cfg.control_bound_per_period == pytest.approx(
            4 * cfg.probes + 3 * cfg.proxies + 4)
        assert cfg.retransmit_budget(2) >= 1
        assert cfg.retransmit_budget(64) > cfg.retransmit_budget(4)


class TestSwimDetector:
    def test_crash_detected_within_bound(self, drive):
        async def body():
            cfg = quick_config()
            fabric = Fabric(mode="cm5", transport="loopback")
            detector = SwimDetector(fabric, cfg)
            try:
                names = [f"p{i}" for i in range(5)]
                for name in names:
                    await fabric.add_peer(name)
                detector.start()
                await asyncio.sleep(4 * cfg.period)
                loop = asyncio.get_running_loop()
                await fabric.crash_peer("p4")
                crashed_at = loop.time()
                deadline = crashed_at + 3 * cfg.detection_bound
                while "p4" not in detector.dead_at and loop.time() < deadline:
                    await asyncio.sleep(cfg.period / 2)
                latency = (detector.dead_at["p4"] - crashed_at
                           if "p4" in detector.dead_at else None)
                false = detector.false_dead({"p4"})
            finally:
                await detector.stop()
                await fabric.close()
            return cfg, latency, false

        cfg, latency, false = drive(body(), timeout=SOAK_TIMEOUT)
        assert latency is not None, "crash was never detected"
        assert latency <= cfg.detection_bound
        assert false == []

    def test_graceful_leave_is_left_not_dead(self, drive):
        async def body():
            cfg = quick_config()
            fabric = Fabric(mode="cm5", transport="loopback")
            detector = SwimDetector(fabric, cfg)
            try:
                names = [f"p{i}" for i in range(5)]
                for name in names:
                    await fabric.add_peer(name)
                detector.start()
                await asyncio.sleep(4 * cfg.period)
                await fabric.remove_peer("p0")
                # Linger past the suspicion machinery's horizon: a false
                # accusation would need this long to surface.
                await asyncio.sleep(cfg.detection_bound)
                states = {obs: detector.state(obs, "p0")
                          for obs in names[1:]}
                accusations = [e for e in detector.events
                               if e["subject"] == "p0"
                               and e["event"] in ("PEER_SUSPECT",
                                                  "PEER_DEAD")]
            finally:
                await detector.stop()
                await fabric.close()
            return states, accusations, detector.dead_at

        states, accusations, dead_at = drive(body(), timeout=SOAK_TIMEOUT)
        assert all(s is MemberState.LEFT for s in states.values()), states
        assert accusations == []
        assert "p0" not in dead_at

    def test_restart_rejoins_under_higher_incarnation(self, drive):
        async def body():
            cfg = quick_config()
            fabric = Fabric(mode="cm5", transport="loopback")
            detector = SwimDetector(fabric, cfg)
            try:
                names = [f"p{i}" for i in range(5)]
                for name in names:
                    await fabric.add_peer(name)
                detector.start()
                await asyncio.sleep(4 * cfg.period)
                loop = asyncio.get_running_loop()
                await fabric.crash_peer("p4")
                deadline = loop.time() + 3 * cfg.detection_bound
                while "p4" not in detector.dead_at and loop.time() < deadline:
                    await asyncio.sleep(cfg.period / 2)
                assert "p4" in detector.dead_at, "crash never detected"
                await fabric.restart_peer("p4")
                deadline = loop.time() + 3 * cfg.detection_bound
                rejoined = False
                while loop.time() < deadline:
                    rejoined = all(
                        detector.state(obs, "p4") is MemberState.ALIVE
                        for obs in names[:4])
                    if rejoined:
                        break
                    await asyncio.sleep(cfg.period)
                incarnation = detector.incarnations.get("p4", 0)
            finally:
                await detector.stop()
                await fabric.close()
            return rejoined, incarnation

        rejoined, incarnation = drive(body(), timeout=SOAK_TIMEOUT)
        assert rejoined, "restarted peer never rejoined everywhere"
        assert incarnation >= 1

    def test_control_frames_flat_per_peer(self, drive):
        async def body():
            cfg = quick_config()
            fabric = Fabric(mode="cm5", transport="loopback")
            detector = SwimDetector(fabric, cfg)
            try:
                for i in range(8):
                    await fabric.add_peer(f"p{i}")
                detector.start()
                await asyncio.sleep(3 * cfg.period)
                frames0, ticks0 = (detector.control_frames_sent(),
                                   detector.ticks)
                await asyncio.sleep(8 * cfg.period)
                frames1, ticks1 = (detector.control_frames_sent(),
                                   detector.ticks)
            finally:
                await detector.stop()
                await fabric.close()
            periods = max(1, ticks1 - ticks0)
            return (frames1 - frames0) / 8 / periods, cfg

        per_peer, cfg = drive(body(), timeout=SOAK_TIMEOUT)
        assert 0 < per_peer <= cfg.control_bound_per_period


class TestGracefulLeaveHeartbeat:
    """Satellite bugfix lock: the *legacy* pairwise detector must treat
    ``remove_peer`` as a departure, not as the onset of silence.  This
    test failed before ``FailureDetector`` handled the ``leave`` peer
    event (the drain window aged the leaver into SUSPECT/DEAD)."""

    def test_remove_peer_never_accuses_the_leaver(self, drive):
        async def body():
            cfg = HeartbeatConfig(interval=0.01, suspect_after=0.04,
                                  dead_after=0.08)
            fabric = Fabric(mode="cm5", transport="loopback")
            detector = FailureDetector(fabric, cfg)
            transitions = []
            detector.on_state_change = (
                lambda obs, subj, state: transitions.append((subj, state)))
            try:
                for i in range(4):
                    await fabric.add_peer(f"p{i}")
                detector.start()
                await asyncio.sleep(4 * cfg.interval)
                await fabric.remove_peer("p0")
                await asyncio.sleep(2 * cfg.dead_after)
            finally:
                await detector.stop()
                await fabric.close()
            return transitions, dict(detector.dead_at)

        transitions, dead_at = drive(body(), timeout=SOAK_TIMEOUT)
        accusations = [(subj, state) for subj, state in transitions
                       if subj == "p0" and state in (PeerState.SUSPECT,
                                                     PeerState.DEAD)]
        assert accusations == []
        assert "p0" not in dead_at


class TestLatencySpikeScenario:
    """The new chaos row's semantics beyond the generic clean-audit
    gate: a 3x dead_after latency spike must produce zero DEAD verdicts
    and at least one incarnation-bump refutation."""

    @pytest.mark.parametrize("mode", ["cm5", "cr"])
    def test_spike_refutes_instead_of_killing(self, drive, mode):
        config = ChaosConfig(mode=mode, peers=4, lanes=4, messages=18,
                             send_interval=0.008)
        result = drive(run_chaos(config, "latency-spike-no-false-dead"),
                       timeout=SOAK_TIMEOUT)
        assert result.errors == []
        assert result.audit.clean, result.audit.to_dict()
        assert result.false_dead == []
        assert result.refutations >= 1
        assert result.refutation_expected
