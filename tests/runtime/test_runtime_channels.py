"""Tests for the live channel/framing surface and the UDP end-to-end path."""

import asyncio

import pytest

from repro.runtime import (
    LiveFramedChannel,
    make_loopback_pair,
    make_udp_pair,
    open_live_channel,
    run_ordered_live,
)
from repro.runtime.frames import MAX_PAYLOAD_WORDS, TRACE_CTX_WORDS
from repro.runtime.reliability import BackoffPolicy
from repro.runtime.tracing import EventType, Tracer

FAST = BackoffPolicy(initial=0.01, factor=1.5, ceiling=0.1, max_retries=12)


async def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.005)


class TestLiveChannel:
    def test_stream_arrives_in_order_despite_faults(self, drive):
        async def body():
            pair = make_loopback_pair(
                mode="cm5", drop_rate=0.05, reorder_rate=0.3, seed=5
            )
            try:
                channel = open_live_channel(
                    pair.src, pair.dst, packet_words=8, backoff=FAST
                )
                words = list(range(500))
                packets = await channel.send(words)
                await channel.drain()
                await wait_until(
                    lambda: len(channel.receive_buffer) >= len(words)
                )
                assert packets == 63  # ceil(500 / 8)
                assert channel.receive_buffer.read() == words
                assert channel.outstanding == 0
                assert channel.mode == "cm5"
                await channel.close()
            finally:
                await pair.close()

        drive(body())

    def test_cr_channel_reports_mode_and_no_buffering(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                channel = open_live_channel(pair.src, pair.dst, packet_words=8)
                await channel.send(list(range(100)))
                await channel.drain()
                await wait_until(lambda: len(channel.receive_buffer) >= 100)
                assert channel.mode == "cr"
                assert channel.outstanding == 0
                assert channel.receive_buffer.read() == list(range(100))
            finally:
                await pair.close()

        drive(body())

    def test_window_narrower_than_reorder_window_enforced(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5")
            try:
                with pytest.raises(ValueError):
                    open_live_channel(pair.src, pair.dst,
                                      window=512, reorder_window=128)
            finally:
                await pair.close()

        drive(body())


class TestChunkingBoundaries:
    """Fragmentation at the frame-size ceiling, traced and untraced."""

    def test_untraced_full_size_packet_is_one_frame(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                channel = open_live_channel(
                    pair.src, pair.dst, packet_words=MAX_PAYLOAD_WORDS)
                words = list(range(MAX_PAYLOAD_WORDS))
                packets = await channel.send(words)
                await wait_until(
                    lambda: len(channel.receive_buffer) >= len(words))
                assert packets == 1
                assert channel.receive_buffer.read() == words
                await channel.close()
            finally:
                await pair.close()

        drive(body())

    def test_traced_full_size_send_reserves_the_context_suffix(self, drive):
        """With a tracer armed, a full-size packet must leave room for
        the 3-word trace context: fragmentation reserves the suffix, so
        every DATA frame on the wire still carries its origin context
        (before the fix, the context was silently dropped on exactly
        the frames a traced run cares about)."""

        async def body():
            tracer = Tracer()
            pair = make_loopback_pair(mode="cr", tracer=tracer)
            try:
                channel = open_live_channel(
                    pair.src, pair.dst, packet_words=MAX_PAYLOAD_WORDS)
                words = list(range(MAX_PAYLOAD_WORDS))
                packets = await channel.send(words)
                await wait_until(
                    lambda: len(channel.receive_buffer) >= len(words))
                # The suffix reservation forces a second fragment...
                assert packets == 2
                assert channel.receive_buffer.read() == words
                # ...and every data arrival names its sending event.
                recvs = [e for e in tracer.events()
                         if e.etype is EventType.RECV and e.kind == "DATA"]
                assert len(recvs) == packets
                assert all(e.origin == pair.src.trace_origin for e in recvs)
                assert all(e.origin_ts_ns >= 0 for e in recvs)
                await channel.close()
            finally:
                await pair.close()

        drive(body())

    def test_traced_chunk_sizes_respect_the_reservation(self, drive):
        async def body():
            tracer = Tracer()
            pair = make_loopback_pair(mode="cr", tracer=tracer)
            try:
                channel = open_live_channel(
                    pair.src, pair.dst, packet_words=MAX_PAYLOAD_WORDS)
                reserved = MAX_PAYLOAD_WORDS - TRACE_CTX_WORDS
                # Exactly one reserved-size chunk: still a single frame.
                assert await channel.send(list(range(reserved))) == 1
                # One word past it spills into a second frame.
                assert await channel.send(list(range(reserved + 1))) == 2
                await wait_until(lambda: len(channel.receive_buffer)
                                 >= 2 * reserved + 1)
                await channel.close()
            finally:
                await pair.close()

        drive(body())


class TestLiveFraming:
    def test_message_boundaries_survive_packetization(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.3, seed=2)
            try:
                framed = LiveFramedChannel(open_live_channel(
                    pair.src, pair.dst, packet_words=4, backoff=FAST
                ))
                messages = [[1, 2, 3], [], list(range(40)), [7]]
                for message in messages:
                    await framed.send_message(message)
                await framed.channel.drain()
                await wait_until(
                    lambda: len(framed.received_messages) >= len(messages)
                )
                assert framed.received_messages == messages
            finally:
                await pair.close()

        drive(body())


class TestUDPEndToEnd:
    def test_ordered_stream_over_real_sockets(self, drive):
        async def body():
            pair = await make_udp_pair()
            try:
                result = await run_ordered_live(
                    pair, message_words=256, deadline=15.0, backoff=FAST
                )
                assert result.completed
                assert result.delivered_words == list(range(1, 257))
                assert result.transport == "udp"
            finally:
                await pair.close()

        drive(body())
