"""Tests for the live channel/framing surface and the UDP end-to-end path."""

import asyncio

import pytest

from repro.runtime import (
    LiveFramedChannel,
    make_loopback_pair,
    make_udp_pair,
    open_live_channel,
    run_ordered_live,
)
from repro.runtime.reliability import BackoffPolicy

FAST = BackoffPolicy(initial=0.01, factor=1.5, ceiling=0.1, max_retries=12)


async def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.005)


class TestLiveChannel:
    def test_stream_arrives_in_order_despite_faults(self, drive):
        async def body():
            pair = make_loopback_pair(
                mode="cm5", drop_rate=0.05, reorder_rate=0.3, seed=5
            )
            try:
                channel = open_live_channel(
                    pair.src, pair.dst, packet_words=8, backoff=FAST
                )
                words = list(range(500))
                packets = await channel.send(words)
                await channel.drain()
                await wait_until(
                    lambda: len(channel.receive_buffer) >= len(words)
                )
                assert packets == 63  # ceil(500 / 8)
                assert channel.receive_buffer.read() == words
                assert channel.outstanding == 0
                assert channel.mode == "cm5"
                await channel.close()
            finally:
                await pair.close()

        drive(body())

    def test_cr_channel_reports_mode_and_no_buffering(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                channel = open_live_channel(pair.src, pair.dst, packet_words=8)
                await channel.send(list(range(100)))
                await channel.drain()
                await wait_until(lambda: len(channel.receive_buffer) >= 100)
                assert channel.mode == "cr"
                assert channel.outstanding == 0
                assert channel.receive_buffer.read() == list(range(100))
            finally:
                await pair.close()

        drive(body())

    def test_window_narrower_than_reorder_window_enforced(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5")
            try:
                with pytest.raises(ValueError):
                    open_live_channel(pair.src, pair.dst,
                                      window=512, reorder_window=128)
            finally:
                await pair.close()

        drive(body())


class TestLiveFraming:
    def test_message_boundaries_survive_packetization(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.3, seed=2)
            try:
                framed = LiveFramedChannel(open_live_channel(
                    pair.src, pair.dst, packet_words=4, backoff=FAST
                ))
                messages = [[1, 2, 3], [], list(range(40)), [7]]
                for message in messages:
                    await framed.send_message(message)
                await framed.channel.drain()
                await wait_until(
                    lambda: len(framed.received_messages) >= len(messages)
                )
                assert framed.received_messages == messages
            finally:
                await pair.close()

        drive(body())


class TestUDPEndToEnd:
    def test_ordered_stream_over_real_sockets(self, drive):
        async def body():
            pair = await make_udp_pair()
            try:
                result = await run_ordered_live(
                    pair, message_words=256, deadline=15.0, backoff=FAST
                )
                assert result.completed
                assert result.delivered_words == list(range(1, 257))
                assert result.transport == "udp"
            finally:
                await pair.close()

        drive(body())
