"""Tests for the timer-wheel retransmitter and RTT-adaptive timers.

Covers the regression fixes: the final retry's full ack window,
deterministic give-up reporting without a callback, awaitable
``cancel_all``, plus the RFC 6298 estimator math and the
single-task-per-endpoint structure of the wheel.
"""

import asyncio

import pytest

from repro.runtime.reliability import (
    BackoffPolicy,
    Retransmitter,
    RetransmitExhausted,
    RttEstimator,
    _Tracked,
)


def make_retransmitter(resends, policy, **kwargs):
    async def resend(key, data):
        resends.append((key, data))

    return Retransmitter(resend, policy=policy, **kwargs)


class TestFinalRetryWindow:
    def test_ack_after_last_resend_still_wins(self, drive):
        """Regression: the final retry must get a full backoff interval
        to be acknowledged, not a zero-length window."""

        async def body():
            resends = []
            policy = BackoffPolicy(initial=0.01, factor=1.0, max_retries=2)
            give_ups = []
            rt = make_retransmitter(
                resends, policy, on_give_up=lambda k, e: give_ups.append(k)
            )
            rt.track("k", b"data")
            # Wait until both resends have fired, then ack inside what
            # must be the final (post-last-resend) ack window.
            while rt.retransmissions < policy.max_retries:
                await asyncio.sleep(0.002)
            assert rt.outstanding == 1  # not yet exhausted: window open
            assert rt.ack("k")
            await asyncio.sleep(0.05)   # long past interval(max_retries)
            await rt.cancel_all()
            return give_ups, rt.exhausted, rt.acked

        give_ups, exhausted, acked = drive(body())
        assert give_ups == []
        assert exhausted == 0
        assert acked == 1

    def test_exhaustion_takes_one_extra_interval(self, drive):
        async def body():
            resends = []
            policy = BackoffPolicy(initial=0.02, factor=1.0, max_retries=3)
            rt = make_retransmitter(resends, policy)
            loop = asyncio.get_running_loop()
            start = loop.time()
            rt.track("k", b"x")
            while "k" in rt:
                await asyncio.sleep(0.002)
            elapsed = loop.time() - start
            await rt.cancel_all()
            return elapsed, len(resends)

        elapsed, resend_count = drive(body())
        assert resend_count == 3
        # 3 resend intervals + the final ack window = 4 * 20 ms.
        assert elapsed >= 4 * 0.02 * 0.9


class TestGiveUpSurfacing:
    def test_without_callback_failure_is_recorded_not_raised(self, drive):
        """Regression: no ``on_give_up`` used to raise inside a
        fire-and-forget task ('exception was never retrieved')."""

        async def body():
            unhandled = []
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda _loop, ctx: unhandled.append(ctx)
            )
            policy = BackoffPolicy(initial=0.005, factor=1.0, max_retries=2)
            rt = make_retransmitter([], policy)  # no on_give_up wired
            rt.track("lost", b"x")
            while not rt.failures:
                await asyncio.sleep(0.002)
            await rt.cancel_all()
            await asyncio.sleep(0.01)  # let any stray task exceptions surface
            return unhandled, rt.failures, rt.exhausted

        unhandled, failures, exhausted = drive(body())
        assert unhandled == []
        assert set(failures) == {"lost"}
        assert isinstance(failures["lost"], RetransmitExhausted)
        assert exhausted == 1

    def test_callback_path_still_fires(self, drive):
        async def body():
            seen = []
            policy = BackoffPolicy(initial=0.005, factor=1.0, max_retries=1)
            rt = make_retransmitter(
                [], policy, on_give_up=lambda k, e: seen.append((k, e))
            )
            rt.track("k", b"x")
            while not seen:
                await asyncio.sleep(0.002)
            await rt.cancel_all()
            return seen, rt.failures

        seen, failures = drive(body())
        assert len(seen) == 1 and seen[0][0] == "k"
        assert failures == {}  # callback consumed it


class TestCancelAll:
    def test_cancel_all_awaits_the_wheel_and_stops_resends(self, drive):
        async def body():
            resends = []
            baseline = set(asyncio.all_tasks())
            policy = BackoffPolicy(initial=0.01, factor=1.0, max_retries=10)
            rt = make_retransmitter(resends, policy)
            for i in range(8):
                rt.track(i, bytes([i]))
            await asyncio.sleep(0.015)  # let at least one resend happen
            await rt.cancel_all()
            count_after_cancel = len(resends)
            await asyncio.sleep(0.05)
            # No task left behind to resend on a closed transport.
            pending = [
                t for t in asyncio.all_tasks() - baseline if not t.done()
            ]
            return count_after_cancel, len(resends), pending, rt.outstanding

        before, after, pending, outstanding = drive(body())
        assert after == before
        assert pending == []
        assert outstanding == 0

    def test_track_after_cancel_all_restarts_the_wheel(self, drive):
        async def body():
            resends = []
            policy = BackoffPolicy(initial=0.005, factor=1.0, max_retries=5)
            rt = make_retransmitter(resends, policy)
            rt.track("a", b"a")
            await rt.cancel_all()
            rt.track("b", b"b")
            while not resends:
                await asyncio.sleep(0.002)
            await rt.cancel_all()
            return [key for key, _ in resends]

        assert set(drive(body())) == {"b"}


class TestTimerWheel:
    def test_many_keys_share_one_task(self, drive):
        """The O(window) task-per-packet structure is gone: any number of
        tracked keys ride a single timer-wheel task."""

        async def body():
            baseline = len(asyncio.all_tasks())
            policy = BackoffPolicy(initial=0.5, max_retries=3)
            rt = make_retransmitter([], policy)
            for i in range(64):
                rt.track(i, b"x")
            extra = len(asyncio.all_tasks()) - baseline
            await rt.cancel_all()
            return extra

        assert drive(body()) == 1

    def test_ack_below_releases_cumulatively(self, drive):
        async def body():
            policy = BackoffPolicy(initial=0.5, max_retries=3)
            rt = make_retransmitter([], policy)
            for i in range(10):
                rt.track(i, b"x")
            rt.track(("alloc", 1), b"y")  # non-int keys are untouched
            released = rt.ack_below(7)
            keys = set(rt.tracked_keys())
            await rt.cancel_all()
            return released, keys

        released, keys = drive(body())
        assert released == 7
        assert keys == {7, 8, 9, ("alloc", 1)}

    def test_duplicate_ack_returns_false(self, drive):
        async def body():
            policy = BackoffPolicy(initial=0.5, max_retries=3)
            rt = make_retransmitter([], policy)
            rt.track("k", b"x")
            first, second = rt.ack("k"), rt.ack("k")
            await rt.cancel_all()
            return first, second

        assert drive(body()) == (True, False)

    def test_duplicate_track_rejected(self, drive):
        async def body():
            rt = make_retransmitter([], BackoffPolicy(initial=0.5))
            rt.track("k", b"x")
            try:
                with pytest.raises(ValueError):
                    rt.track("k", b"y")
            finally:
                await rt.cancel_all()

        drive(body())


class TestResendFailure:
    def test_one_raising_resend_does_not_kill_the_wheel(self, drive):
        """Regression: a raised ``resend`` escaped ``_fire`` and killed
        the shared timer-wheel task — every *other* tracked key silently
        stopped retransmitting."""

        async def body():
            resends = []

            async def resend(key, data):
                if key == "doomed":
                    raise OSError("transport closed under us")
                resends.append(key)

            policy = BackoffPolicy(initial=0.005, factor=1.0, max_retries=50)
            rt = Retransmitter(resend, policy=policy)
            rt.track("doomed", b"x")
            rt.track("healthy", b"y")
            # The healthy key must keep riding the wheel long after the
            # doomed key's resend raised.
            while resends.count("healthy") < 3:
                await asyncio.sleep(0.002)
            failures = dict(rt.failures)
            errors = rt.resend_errors
            tracked = set(rt.tracked_keys())
            await rt.cancel_all()
            return failures, errors, tracked

        failures, errors, tracked = drive(body())
        assert set(failures) == {"doomed"}
        assert isinstance(failures["doomed"], RetransmitExhausted)
        assert isinstance(failures["doomed"].__cause__, OSError)
        assert errors == 1
        assert tracked == {"healthy"}

    def test_raising_resend_routes_through_on_give_up(self, drive):
        async def body():
            async def resend(key, data):
                raise OSError("no route")

            seen = []
            policy = BackoffPolicy(initial=0.005, factor=1.0, max_retries=5)
            rt = Retransmitter(
                resend, policy=policy,
                on_give_up=lambda k, e: seen.append((k, e)),
            )
            rt.track("k", b"x")
            while not seen:
                await asyncio.sleep(0.002)
            await rt.cancel_all()
            return seen, rt.failures

        seen, failures = drive(body())
        assert len(seen) == 1 and seen[0][0] == "k"
        assert failures == {}  # callback consumed it


class TestRearmClock:
    def test_rearm_reads_a_fresh_clock_after_the_resend_await(self, drive):
        """Regression: ``_fire`` re-armed deadlines from the ``now``
        captured *before* awaiting the resends, so a resend slower than
        the backoff interval left the new deadline already in the past —
        an immediate premature retransmit."""

        async def body():
            async def resend(key, data):
                # Slower than the 20 ms interval: the loop clock ages
                # past now+interval while the resend is in flight.
                await asyncio.sleep(0.03)

            policy = BackoffPolicy(initial=0.02, factor=1.0,
                                   ceiling=10.0, max_retries=50)
            rt = Retransmitter(resend, policy=policy)
            loop = asyncio.get_running_loop()
            now = loop.time()
            rt._entries["k"] = _Tracked(data=b"x", deadline=now,
                                        first_sent=now)
            await rt._fire(now)
            entry = rt._entries["k"]
            fresh = loop.time()
            await rt.cancel_all()
            return entry.deadline, fresh

        deadline, fresh = drive(body())
        # Pre-fix: deadline = now + 0.02 while the clock already reads
        # now + 0.03 — expired on arrival.
        assert deadline > fresh


class TestRttEstimator:
    def test_first_sample_initialises_srtt_and_rttvar(self):
        est = RttEstimator(fallback=0.03, min_rto=0.001, max_rto=2.0)
        assert est.rto == 0.03  # pre-sample: the old fixed guess
        est.sample(0.010)
        assert est.srtt == pytest.approx(0.010)
        assert est.rttvar == pytest.approx(0.005)
        assert est.rto == pytest.approx(0.010 + 4 * 0.005)

    def test_ewma_follows_rfc6298_constants(self):
        est = RttEstimator(min_rto=0.0, max_rto=10.0)
        est.sample(0.1)
        est.sample(0.2)
        # RTTVAR = 3/4*0.05 + 1/4*|0.1-0.2|; SRTT = 7/8*0.1 + 1/8*0.2
        assert est.rttvar == pytest.approx(0.75 * 0.05 + 0.25 * 0.1)
        assert est.srtt == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_rto_clamped_to_floor_and_ceiling(self):
        est = RttEstimator(min_rto=0.02, max_rto=0.5)
        est.sample(0.0001)
        assert est.rto == 0.02
        est2 = RttEstimator(min_rto=0.02, max_rto=0.5)
        est2.sample(5.0)
        assert est2.rto == 0.5

    def test_negative_samples_ignored(self):
        est = RttEstimator()
        est.sample(-1.0)
        assert est.samples == 0 and est.srtt is None

    def test_retransmitted_keys_do_not_sample(self, drive):
        """Karn's algorithm: a resent packet's ack is ambiguous."""

        async def body():
            policy = BackoffPolicy(initial=0.005, factor=1.0, max_retries=10)
            rt = make_retransmitter([], policy)
            rt.track("k", b"x")
            while rt.retransmissions == 0:
                await asyncio.sleep(0.002)
            rt.ack("k")
            samples_retransmitted = rt.rtt.samples
            rt.track("fresh", b"y")
            rt.ack("fresh")
            samples_fresh = rt.rtt.samples
            await rt.cancel_all()
            return samples_retransmitted, samples_fresh

        assert drive(body()) == (0, 1)

    def test_sample_rtt_false_opts_out(self, drive):
        async def body():
            rt = make_retransmitter([], BackoffPolicy(initial=0.5))
            rt.track("k", b"x", sample_rtt=False)
            rt.ack("k")
            samples = rt.rtt.samples
            await rt.cancel_all()
            return samples

        assert drive(body()) == 0

    def test_adaptive_rto_drives_the_schedule(self, drive):
        """After samples arrive, the wheel's intervals use the measured
        RTO, not the static initial guess."""

        async def body():
            policy = BackoffPolicy(initial=0.5, factor=1.0,
                                   ceiling=10.0, max_retries=3)
            rt = make_retransmitter([], policy)
            rt.rtt.min_rto = 0.01
            # Feed fast samples: adaptive RTO collapses to the floor.
            for _ in range(4):
                rt.track("s", b"x")
                rt.ack("s")
            assert rt.rtt.rto < 0.05
            resends = []
            rt._resend = lambda k, d: _record(resends, k)
            loop = asyncio.get_running_loop()
            start = loop.time()
            rt.track("slow", b"x")
            while not resends:
                await asyncio.sleep(0.002)
            elapsed = loop.time() - start
            await rt.cancel_all()
            return elapsed

        async def _record(resends, key):
            resends.append(key)

        # First resend fires on the adaptive RTO (~10-50 ms), far below
        # the 500 ms static guess.
        assert drive(body()) < 0.3
