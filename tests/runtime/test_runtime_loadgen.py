"""Tests for the concurrent load generator over the fabric."""

import asyncio
from collections import Counter
from dataclasses import replace

import pytest

from repro.runtime.loadgen import (
    LoadConfig,
    measure_load,
    run_load,
    spread_pairs,
)

#: Small but real: 4 peers, 6 channels, 3 messages each.
SMALL = LoadConfig(peers=4, channels=6, messages=3, message_words=8,
                   packet_words=4, drop_rate=0.05, reorder_rate=0.1,
                   deadline=20.0)


class TestSpreadPairs:
    def test_even_distribution_of_sources_and_sinks(self):
        names = [f"p{i}" for i in range(4)]
        pairs = spread_pairs(names, 8)
        srcs = Counter(src for src, _ in pairs)
        dsts = Counter(dst for _, dst in pairs)
        assert set(srcs.values()) == {2}
        assert set(dsts.values()) == {2}

    def test_no_self_pairs_and_distinct_strides(self):
        names = [f"p{i}" for i in range(3)]
        pairs = spread_pairs(names, 6)
        assert all(src != dst for src, dst in pairs)
        # 3 peers admit 6 distinct directed pairs; all must appear.
        assert len(set(pairs)) == 6

    def test_rejects_fewer_than_two_names(self):
        with pytest.raises(ValueError):
            spread_pairs(["solo"], 2)


class TestConfigValidation:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            LoadConfig(peers=1)

    def test_needs_positive_channels_and_messages(self):
        with pytest.raises(ValueError):
            LoadConfig(channels=0)
        with pytest.raises(ValueError):
            LoadConfig(messages=0)

    def test_needs_room_for_the_integrity_header(self):
        with pytest.raises(ValueError):
            LoadConfig(message_words=1)


class TestLoadRuns:
    def test_cm5_load_delivers_everything_through_faults(self, drive):
        result = measure_load(SMALL)
        assert result.completed
        assert result.errors == []
        assert result.messages_sent == 6 * 3
        assert result.lost_messages == 0
        assert result.corrupt_messages == 0
        # Every delivered message contributed one latency sample.
        assert result.latency.count == 18
        # Faults were actually exercised somewhere in the sweep.
        assert result.wire["data_datagrams"] > 0

    def test_cr_load_skips_the_machinery_entirely(self, drive):
        result = measure_load(replace(SMALL, mode="cr",
                                      drop_rate=0.0, reorder_rate=0.0))
        assert result.completed and result.lost_messages == 0
        assert result.ordering_fault_share == 0.0
        assert result.wire["ack_datagrams"] == 0
        assert result.wire["retransmissions"] == 0

    def test_cm5_overhead_share_collapses_against_cr(self, drive):
        cm5 = measure_load(SMALL)
        cr = measure_load(replace(SMALL, mode="cr",
                                  drop_rate=0.0, reorder_rate=0.0))
        assert cm5.ordering_fault_share > 0.0
        assert cr.ordering_fault_share <= cm5.ordering_fault_share * 0.5

    def test_run_load_composes_with_a_running_loop(self, drive):
        async def body():
            return await run_load(replace(SMALL, channels=2, messages=2))

        result = drive(body())
        assert result.completed and result.lost_messages == 0

    def test_deadline_expiry_reports_instead_of_hanging(self, drive):
        config = replace(SMALL, deadline=0.001, channels=4, messages=8)
        result = measure_load(config)
        assert not result.completed
        assert any("deadline" in err for err in result.errors)

    def test_to_record_round_trips_through_json(self, drive):
        import json

        result = measure_load(replace(SMALL, channels=2, messages=2))
        record = json.loads(json.dumps(result.to_record()))
        assert record["mode"] == "cm5"
        assert record["peers"] == 4
        assert record["lost_messages"] == 0
        assert record["latency"]["count"] == result.latency.count
        assert 0.0 <= record["ordering_fault_share"] <= 1.0
        assert set(record["features"]) >= {"base", "in_order"}

    def test_no_tasks_leak_after_a_load_run(self, drive):
        async def body():
            baseline = set(asyncio.all_tasks())
            await run_load(replace(SMALL, channels=2, messages=2))
            await asyncio.sleep(0.05)
            return [t for t in asyncio.all_tasks() - baseline
                    if not t.done()]

        assert drive(body()) == []
