"""Tests for the concurrent load generator over the fabric."""

import asyncio
from collections import Counter
from dataclasses import replace

import pytest

from repro.runtime.loadgen import (
    AuditLedger,
    LoadConfig,
    measure_load,
    message_checksum,
    run_load,
    spread_pairs,
)

#: Small but real: 4 peers, 6 channels, 3 messages each.
SMALL = LoadConfig(peers=4, channels=6, messages=3, message_words=8,
                   packet_words=4, drop_rate=0.05, reorder_rate=0.1,
                   deadline=20.0)


class TestSpreadPairs:
    def test_even_distribution_of_sources_and_sinks(self):
        names = [f"p{i}" for i in range(4)]
        pairs = spread_pairs(names, 8)
        srcs = Counter(src for src, _ in pairs)
        dsts = Counter(dst for _, dst in pairs)
        assert set(srcs.values()) == {2}
        assert set(dsts.values()) == {2}

    def test_no_self_pairs_and_distinct_strides(self):
        names = [f"p{i}" for i in range(3)]
        pairs = spread_pairs(names, 6)
        assert all(src != dst for src, dst in pairs)
        # 3 peers admit 6 distinct directed pairs; all must appear.
        assert len(set(pairs)) == 6

    def test_rejects_fewer_than_two_names(self):
        with pytest.raises(ValueError):
            spread_pairs(["solo"], 2)


class TestConfigValidation:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            LoadConfig(peers=1)

    def test_needs_positive_channels_and_messages(self):
        with pytest.raises(ValueError):
            LoadConfig(channels=0)
        with pytest.raises(ValueError):
            LoadConfig(messages=0)

    def test_needs_room_for_the_integrity_header(self):
        with pytest.raises(ValueError):
            LoadConfig(message_words=1)


class TestAuditLedger:
    """Unit tests for the exactly-once bookkeeping itself."""

    def stamped(self, ledger, cid, index, filler=(7, 8)):
        return ledger.stamp(cid, index, list(filler))

    def test_clean_lane_audits_clean(self):
        ledger = AuditLedger()
        for k in range(5):
            ledger.record_delivery(1, self.stamped(ledger, 1, k))
        report = ledger.verdict()
        assert report.clean
        assert (report.offered, report.delivered) == (5, 5)

    def test_duplicate_detected(self):
        ledger = AuditLedger()
        words = self.stamped(ledger, 1, 0)
        ledger.record_delivery(1, words)
        ledger.record_delivery(1, words)
        report = ledger.verdict()
        assert report.duplicates == 1
        assert not report.clean

    def test_gap_counts_one_misorder_then_resyncs(self):
        ledger = AuditLedger()
        w0 = self.stamped(ledger, 1, 0)
        w1 = self.stamped(ledger, 1, 1)
        w2 = self.stamped(ledger, 1, 2)
        ledger.record_delivery(1, w0)
        ledger.record_delivery(1, w2)  # skipped 1: one violation...
        report = ledger.verdict()
        assert report.misordered == 1
        # ...and the books resync so the lane stays auditable: index 1
        # arriving late now reads as out of order (a duplicate of the
        # past), not as a fresh clean delivery.
        ledger.record_delivery(1, w1)
        assert ledger.verdict().violations >= 2

    def test_checksum_failure_detected(self):
        ledger = AuditLedger()
        words = self.stamped(ledger, 1, 0)
        words[-1] ^= 1  # corrupt the filler after stamping
        ledger.record_delivery(1, words)
        report = ledger.verdict()
        assert report.checksum_failures == 1

    def test_missing_is_a_violation_unless_lane_broke(self):
        ledger = AuditLedger()
        self.stamped(ledger, 1, 0)  # offered, never delivered
        assert ledger.verdict().missing == 1
        assert not ledger.verdict().clean
        broken = ledger.verdict(broken_lanes=[1])
        assert broken.missing == 0
        assert broken.missing_on_broken == 1
        assert broken.clean  # loss on a broken lane is the contract

    def test_checksum_covers_cid_index_and_filler(self):
        base = message_checksum(3, 1, [5, 6])
        assert message_checksum(4, 1, [5, 6]) != base
        assert message_checksum(3, 2, [5, 6]) != base
        assert message_checksum(3, 1, [5, 7]) != base

    def test_stamp_enforces_sequential_indices(self):
        ledger = AuditLedger()
        ledger.stamp(1, 0, [9])
        with pytest.raises(ValueError):
            ledger.stamp(1, 2, [9])


class TestLoadRuns:
    def test_cm5_load_delivers_everything_through_faults(self, drive):
        result = measure_load(SMALL)
        assert result.completed
        assert result.errors == []
        assert result.messages_sent == 6 * 3
        assert result.lost_messages == 0
        assert result.corrupt_messages == 0
        # Every delivered message contributed one latency sample.
        assert result.latency.count == 18
        # Faults were actually exercised somewhere in the sweep.
        assert result.wire["data_datagrams"] > 0

    def test_cr_load_skips_the_machinery_entirely(self, drive):
        result = measure_load(replace(SMALL, mode="cr",
                                      drop_rate=0.0, reorder_rate=0.0))
        assert result.completed and result.lost_messages == 0
        assert result.ordering_fault_share == 0.0
        assert result.wire["ack_datagrams"] == 0
        assert result.wire["retransmissions"] == 0

    def test_cm5_overhead_share_collapses_against_cr(self, drive):
        cm5 = measure_load(SMALL)
        cr = measure_load(replace(SMALL, mode="cr",
                                  drop_rate=0.0, reorder_rate=0.0))
        assert cm5.ordering_fault_share > 0.0
        assert cr.ordering_fault_share <= cm5.ordering_fault_share * 0.5

    def test_run_load_composes_with_a_running_loop(self, drive):
        async def body():
            return await run_load(replace(SMALL, channels=2, messages=2))

        result = drive(body())
        assert result.completed and result.lost_messages == 0

    def test_deadline_expiry_reports_instead_of_hanging(self, drive):
        config = replace(SMALL, deadline=0.001, channels=4, messages=8)
        result = measure_load(config)
        assert not result.completed
        assert any("deadline" in err for err in result.errors)

    def test_to_record_round_trips_through_json(self, drive):
        import json

        result = measure_load(replace(SMALL, channels=2, messages=2))
        record = json.loads(json.dumps(result.to_record()))
        assert record["mode"] == "cm5"
        assert record["peers"] == 4
        assert record["lost_messages"] == 0
        assert record["latency"]["count"] == result.latency.count
        assert 0.0 <= record["ordering_fault_share"] <= 1.0
        assert set(record["features"]) >= {"base", "in_order"}

    def test_audited_load_proves_exactly_once(self, drive):
        result = measure_load(replace(SMALL, audit=True))
        assert result.completed
        assert result.audit is not None
        assert result.audit.clean, result.audit.to_dict()
        assert result.audit.delivered == result.audit.offered
        record = result.to_record()
        assert record["audit"]["violations"] == 0

    def test_unaudited_load_has_no_audit_report(self, drive):
        result = measure_load(replace(SMALL, channels=2, messages=2))
        assert result.audit is None
        assert result.to_record()["audit"] is None

    def test_no_tasks_leak_after_a_load_run(self, drive):
        async def body():
            baseline = set(asyncio.all_tasks())
            await run_load(replace(SMALL, channels=2, messages=2))
            await asyncio.sleep(0.05)
            return [t for t in asyncio.all_tasks() - baseline
                    if not t.done()]

        assert drive(body()) == []


class TestSendStampReservoir:
    """The bounded latency sampler (regression for the unbounded
    ``_send_ts`` deque: peak memory grew with offered load, and one
    lost message skewed every later sample by a position)."""

    def test_peak_memory_does_not_scale_with_offered_load(self):
        from repro.runtime.loadgen import SendStampReservoir

        res = SendStampReservoir(limit=64)
        # A 100x-overload backlog: vastly more sends than deliveries.
        for k in range(100_000):
            res.stamp(k, k)
        assert len(res) == 64
        assert res.peak == 64
        assert res.unsampled == 100_000 - 64

    def test_latency_samples_stay_index_matched_under_loss(self):
        from repro.runtime.loadgen import SendStampReservoir

        res = SendStampReservoir(limit=8)
        res.stamp(0, 100)
        res.stamp(1, 200)
        res.stamp(2, 300)
        # Message 1 goes missing for a while: 0 and 2 must resolve
        # against their *own* stamps, not positionally shifted ones.
        assert res.resolve(0, 150) == 50
        assert res.resolve(2, 360) == 60
        assert res.resolve(1, 999) == 799  # late delivery, still exact
        assert res.resolve(3, 1) is None   # unsampled -> no bogus sample

    def test_rejects_a_nonpositive_limit(self):
        from repro.runtime.loadgen import SendStampReservoir

        with pytest.raises(ValueError):
            SendStampReservoir(limit=0)

    def test_overload_run_reports_bounded_stamp_peak(self, drive):
        result = measure_load(replace(SMALL, overload=10.0, audit=True))
        assert result.completed
        peaks = result.peaks
        assert 0 < peaks["send_stamps"] <= peaks["send_stamp_limit"]
