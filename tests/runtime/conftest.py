"""Fixtures for the live-runtime tests.

Every async test body runs through :func:`drive`, which wraps it in
``asyncio.wait_for`` — a per-test hard timeout, so a hung protocol fails
fast instead of stalling the suite (and CI).
"""

from __future__ import annotations

import asyncio

import pytest

#: Hard ceiling for any single async test body.
ASYNC_TEST_TIMEOUT = 20.0


@pytest.fixture
def drive():
    """Run a coroutine to completion on a fresh loop, with a timeout."""

    def runner(coro, timeout: float = ASYNC_TEST_TIMEOUT):
        return asyncio.run(asyncio.wait_for(coro, timeout))

    return runner
