"""Unit tests for the fabric flight recorder."""

import asyncio
import io
import json

import pytest

from repro.runtime.telemetry import FlightRecorder, TelemetrySample


class FakeClock:
    """Patchable perf_counter_ns so rate math is exact."""

    def __init__(self, start_ns=1_000_000):
        self.now = start_ns

    def __call__(self):
        return self.now

    def tick(self, ns):
        self.now += ns


@pytest.fixture
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr("repro.runtime.telemetry.time.perf_counter_ns", fake)
    return fake


class TestSampling:
    def test_counter_sampled_as_rate(self, clock):
        rec = FlightRecorder(interval=0.01)
        count = {"v": 0}
        rec.register_counter("tx", lambda: count["v"])
        rec.sample_once()              # baseline: no previous, rate 0
        count["v"] = 500
        clock.tick(1_000_000_000)      # exactly one second
        sample = rec.sample_once()
        assert sample.values["tx"] == pytest.approx(500.0)

    def test_first_sample_reports_zero_rate(self, clock):
        rec = FlightRecorder()
        rec.register_counter("tx", lambda: 12345)
        assert rec.sample_once().values["tx"] == 0.0

    def test_gauge_sampled_as_read(self, clock):
        rec = FlightRecorder()
        rec.register_gauge("pending", lambda: 7)
        assert rec.sample_once().values["pending"] == 7.0

    def test_raising_instrument_goes_dark_not_fatal(self, clock):
        rec = FlightRecorder()
        rec.register_gauge("dead", lambda: 1 / 0)
        rec.register_gauge("alive", lambda: 3)
        sample = rec.sample_once()
        assert "dead" not in sample.values
        assert sample.values["alive"] == 3.0

    def test_reregistering_counter_resets_delta_baseline(self, clock):
        """Sweeps reuse peer names across cells; the new endpoint's
        counter starts at zero and must not read as a negative rate."""
        rec = FlightRecorder()
        rec.register_counter("p0/tx", lambda: 10_000)
        rec.sample_once()
        clock.tick(1_000_000_000)
        rec.register_counter("p0/tx", lambda: 0)  # fresh endpoint
        sample = rec.sample_once()
        assert sample.values["p0/tx"] == 0.0

    def test_ring_wraps_and_counts_dropped(self, clock):
        rec = FlightRecorder(capacity=3)
        for _ in range(5):
            clock.tick(1_000_000)
            rec.sample_once()
        assert len(rec.samples) == 3
        assert rec.dropped == 2

    def test_rejects_nonpositive_interval_and_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(interval=0.0)
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestMarksAndSeries:
    def test_annotate_stamps_now(self, clock):
        rec = FlightRecorder()
        rec.annotate("partition start")
        assert rec.marks == [(clock.now, "partition start")]

    def test_aggregated_series_sums_by_suffix(self, clock):
        rec = FlightRecorder()
        rec.register_counter("p0/tx", lambda: 0)
        rec.register_counter("p1/tx", lambda: 0)
        rec.register_gauge("p0/pending", lambda: 2)
        rec.register_gauge("p1/pending", lambda: 3)
        rec.sample_once()
        agg = rec.aggregated_series()
        assert agg["pending"] == [(0.0, 5.0)]
        assert agg["tx"] == [(0.0, 0.0)]

    def test_series_points_are_seconds_since_start(self, clock):
        rec = FlightRecorder()
        rec.register_gauge("g", lambda: 1)
        rec.sample_once()
        clock.tick(500_000_000)
        rec.sample_once()
        points = rec.series()["g"]
        assert points[0][0] == pytest.approx(0.0)
        assert points[1][0] == pytest.approx(0.5)


class TestExports:
    def _loaded(self, rec):
        buf = io.StringIO()
        rec.export_jsonl(buf)
        return [json.loads(line) for line in buf.getvalue().splitlines()]

    def test_jsonl_merges_samples_and_marks_in_time_order(self, clock):
        rec = FlightRecorder()
        rec.register_gauge("g", lambda: 1)
        rec.sample_once()
        clock.tick(1_000_000)
        rec.annotate("fault injected")
        clock.tick(1_000_000)
        rec.sample_once()
        records = self._loaded(rec)
        assert [("series" in r, "mark" in r) for r in records] == [
            (True, False), (False, True), (True, False)]
        assert [r["ts_ns"] for r in records] == sorted(
            r["ts_ns"] for r in records)
        assert records[1]["mark"] == "fault injected"

    def test_counter_tracks_shape(self, clock):
        rec = FlightRecorder()
        rec.register_gauge("p0/pending", lambda: 4)
        rec.sample_once()
        clock.tick(1_000_000)
        rec.sample_once()
        (track,) = rec.counter_tracks()
        assert track["name"] == "p0/pending"
        assert [v for _ts, v in track["points"]] == [4.0, 4.0]

    def test_render_timeline_includes_marks_and_wrap_warning(self, clock):
        rec = FlightRecorder(capacity=2)
        rec.register_gauge("g", lambda: 9)
        for _ in range(4):
            clock.tick(10_000_000)
            rec.sample_once()
        rec.annotate("heal all")
        text = rec.render_timeline()
        assert "heal all" in text
        assert "2 dropped" in text

    def test_render_timeline_empty(self):
        assert "no samples" in FlightRecorder().render_timeline()

    def test_sample_to_dict(self):
        sample = TelemetrySample(ts_ns=5, values={"a": 1.0})
        assert sample.to_dict() == {"ts_ns": 5, "series": {"a": 1.0}}


class TestAsyncLifecycle:
    def test_start_stop_takes_final_sample(self):
        async def scenario():
            rec = FlightRecorder(interval=0.005)
            rec.register_gauge("g", lambda: 1)
            rec.start()
            await asyncio.sleep(0.03)
            await rec.stop()
            return rec

        rec = asyncio.run(scenario())
        assert len(rec.samples) >= 2
        assert rec._task is None

    def test_start_is_idempotent(self):
        async def scenario():
            rec = FlightRecorder(interval=0.005)
            rec.start()
            task = rec._task
            rec.start()
            assert rec._task is task
            await rec.stop()

        asyncio.run(scenario())

    def test_register_endpoint_wires_standard_instruments(self):
        class FakeCounters:
            def get(self, name, default=0):
                return {"frames_sent": 10, "frames_received": 4}.get(
                    name, default)

        class FakeEndpoint:
            name = "p7"
            counters = FakeCounters()
            pending_posts = 2

        rec = FlightRecorder()
        rec.register_endpoint(FakeEndpoint())
        sample = rec.sample_once()
        assert set(sample.values) == {"p7/tx", "p7/rx", "p7/pending"}
        assert sample.values["p7/pending"] == 2.0
