"""Unit tests for the runtime wire format."""

import pytest

from repro.runtime.frames import (
    Frame,
    FrameCorruption,
    FrameError,
    FrameKind,
    MAX_PAYLOAD_WORDS,
    data_frame,
    decode_frame,
    encode_frame,
    epoch_reply_frame,
    epoch_req_frame,
    heartbeat_frame,
)


class TestRoundTrip:
    def test_data_frame_round_trips(self):
        frame = data_frame(channel=3, seq=41, payload=[1, 2, 3, 4], aux=7)
        assert decode_frame(encode_frame(frame)) == frame

    def test_empty_payload_round_trips(self):
        frame = Frame(kind=FrameKind.ACK, channel=1, seq=9)
        assert decode_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize("kind", list(FrameKind))
    def test_every_kind_round_trips(self, kind):
        frame = Frame(kind=kind, channel=2, seq=5, aux=1024, payload=(10, 20))
        assert decode_frame(encode_frame(frame)) == frame

    def test_words_are_masked_to_32_bits(self):
        frame = data_frame(channel=1, seq=0, payload=[(1 << 40) + 5])
        assert decode_frame(encode_frame(frame)).payload == (5,)

    def test_large_payload(self):
        payload = tuple(range(256))
        frame = data_frame(channel=1, seq=1, payload=payload)
        assert decode_frame(encode_frame(frame)).payload == payload


class TestDecodeErrors:
    def test_truncated_header_rejected(self):
        with pytest.raises(FrameError):
            decode_frame(b"\xc5\x01")

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(data_frame(1, 0, [1])))
        data[0] = 0x00
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_unknown_kind_rejected(self):
        data = bytearray(encode_frame(data_frame(1, 0, [1])))
        data[1] = 0xEE
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_truncated_payload_rejected(self):
        data = encode_frame(data_frame(1, 0, [1, 2, 3]))
        with pytest.raises(FrameError):
            decode_frame(data[:-2])

    def test_trailing_garbage_rejected(self):
        data = encode_frame(data_frame(1, 0, [1]))
        with pytest.raises(FrameError):
            decode_frame(data + b"\x00")

    def test_oversized_payload_rejected_at_construction(self):
        with pytest.raises(FrameError):
            data_frame(1, 0, list(range(MAX_PAYLOAD_WORDS + 1)))


class TestChecksum:
    """The frame CRC must catch single-bit wire damage anywhere."""

    def test_payload_bit_flip_raises_corruption(self):
        data = bytearray(encode_frame(data_frame(1, 7, [1, 2, 3])))
        data[-1] ^= 0x01
        with pytest.raises(FrameCorruption):
            decode_frame(bytes(data))

    def test_header_bit_flip_raises_corruption(self):
        data = bytearray(encode_frame(data_frame(1, 7, [1, 2, 3])))
        data[4] ^= 0x80  # inside the header fields, past the magic
        with pytest.raises(FrameCorruption):
            decode_frame(bytes(data))

    def test_crc_field_bit_flip_raises_corruption(self):
        frame = data_frame(1, 7, [1, 2, 3])
        encoded = encode_frame(frame)
        for offset in range(len(encoded)):
            for bit in range(8):
                data = bytearray(encoded)
                data[offset] ^= 1 << bit
                with pytest.raises(FrameError):
                    decode_frame(bytes(data))

    def test_corruption_is_a_frame_error(self):
        # Callers that guard with `except FrameError` must keep working.
        assert issubclass(FrameCorruption, FrameError)


class TestChaosHelpers:
    def test_epoch_req_carries_proposal_and_base(self):
        frame = epoch_req_frame(5, proposed_epoch=3, base_seq=42)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind is FrameKind.EPOCH_REQ
        assert (decoded.channel, decoded.seq, decoded.aux) == (5, 3, 42)

    def test_epoch_reply_carries_expected_epoch_and_sacks(self):
        frame = epoch_reply_frame(5, next_expected=17, epoch=3, sacks=(19, 21))
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind is FrameKind.EPOCH_REPLY
        assert (decoded.seq, decoded.aux) == (17, 3)
        assert decoded.payload == (19, 21)

    def test_heartbeat_round_trips(self):
        decoded = decode_frame(encode_frame(heartbeat_frame(4, beat=99)))
        assert decoded.kind is FrameKind.HEARTBEAT
        assert (decoded.channel, decoded.seq) == (4, 99)
