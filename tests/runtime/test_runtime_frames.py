"""Unit tests for the runtime wire format."""

import pytest

from repro.runtime.frames import (
    Frame,
    FrameError,
    FrameKind,
    MAX_PAYLOAD_WORDS,
    data_frame,
    decode_frame,
    encode_frame,
)


class TestRoundTrip:
    def test_data_frame_round_trips(self):
        frame = data_frame(channel=3, seq=41, payload=[1, 2, 3, 4], aux=7)
        assert decode_frame(encode_frame(frame)) == frame

    def test_empty_payload_round_trips(self):
        frame = Frame(kind=FrameKind.ACK, channel=1, seq=9)
        assert decode_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize("kind", list(FrameKind))
    def test_every_kind_round_trips(self, kind):
        frame = Frame(kind=kind, channel=2, seq=5, aux=1024, payload=(10, 20))
        assert decode_frame(encode_frame(frame)) == frame

    def test_words_are_masked_to_32_bits(self):
        frame = data_frame(channel=1, seq=0, payload=[(1 << 40) + 5])
        assert decode_frame(encode_frame(frame)).payload == (5,)

    def test_large_payload(self):
        payload = tuple(range(256))
        frame = data_frame(channel=1, seq=1, payload=payload)
        assert decode_frame(encode_frame(frame)).payload == payload


class TestDecodeErrors:
    def test_truncated_header_rejected(self):
        with pytest.raises(FrameError):
            decode_frame(b"\xc5\x01")

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(data_frame(1, 0, [1])))
        data[0] = 0x00
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_unknown_kind_rejected(self):
        data = bytearray(encode_frame(data_frame(1, 0, [1])))
        data[1] = 0xEE
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_truncated_payload_rejected(self):
        data = encode_frame(data_frame(1, 0, [1, 2, 3]))
        with pytest.raises(FrameError):
            decode_frame(data[:-2])

    def test_trailing_garbage_rejected(self):
        data = encode_frame(data_frame(1, 0, [1]))
        with pytest.raises(FrameError):
            decode_frame(data + b"\x00")

    def test_oversized_payload_rejected_at_construction(self):
        with pytest.raises(FrameError):
            data_frame(1, 0, list(range(MAX_PAYLOAD_WORDS + 1)))
