"""Unit tests for the runtime wire format."""

import random

import pytest

from repro.runtime.frames import (
    Frame,
    TRACE_CTX_WORDS,
    TRACE_FLAG,
    parse_trace_context,
    trace_context_words,
    FrameCorruption,
    FrameError,
    FrameKind,
    MAX_CHANNEL,
    MAX_PAYLOAD_WORDS,
    WORD_MASK,
    data_frame,
    decode_frame,
    encode_batch,
    encode_frame,
    is_batch,
    iter_batch,
    epoch_reply_frame,
    epoch_req_frame,
    heartbeat_frame,
)


class TestRoundTrip:
    def test_data_frame_round_trips(self):
        frame = data_frame(channel=3, seq=41, payload=[1, 2, 3, 4], aux=7)
        assert decode_frame(encode_frame(frame)) == frame

    def test_empty_payload_round_trips(self):
        frame = Frame(kind=FrameKind.ACK, channel=1, seq=9)
        assert decode_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize("kind", list(FrameKind))
    def test_every_kind_round_trips(self, kind):
        frame = Frame(kind=kind, channel=2, seq=5, aux=1024, payload=(10, 20))
        assert decode_frame(encode_frame(frame)) == frame

    def test_out_of_range_words_rejected_not_masked(self):
        # Regression: encode_frame used to mask this to (5,) — a silent
        # corruption.  Out-of-range fields must refuse to encode.
        frame = data_frame(channel=1, seq=0, payload=[(1 << 40) + 5])
        with pytest.raises(FrameError):
            encode_frame(frame)

    def test_large_payload(self):
        payload = tuple(range(256))
        frame = data_frame(channel=1, seq=1, payload=payload)
        assert decode_frame(encode_frame(frame)).payload == payload


class TestDecodeErrors:
    def test_truncated_header_rejected(self):
        with pytest.raises(FrameError):
            decode_frame(b"\xc5\x01")

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(data_frame(1, 0, [1])))
        data[0] = 0x00
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_unknown_kind_rejected(self):
        data = bytearray(encode_frame(data_frame(1, 0, [1])))
        data[1] = 0xEE
        with pytest.raises(FrameError):
            decode_frame(bytes(data))

    def test_truncated_payload_rejected(self):
        data = encode_frame(data_frame(1, 0, [1, 2, 3]))
        with pytest.raises(FrameError):
            decode_frame(data[:-2])

    def test_trailing_garbage_rejected(self):
        data = encode_frame(data_frame(1, 0, [1]))
        with pytest.raises(FrameError):
            decode_frame(data + b"\x00")

    def test_oversized_payload_rejected_at_construction(self):
        with pytest.raises(FrameError):
            data_frame(1, 0, list(range(MAX_PAYLOAD_WORDS + 1)))


class TestChecksum:
    """The frame CRC must catch single-bit wire damage anywhere."""

    def test_payload_bit_flip_raises_corruption(self):
        data = bytearray(encode_frame(data_frame(1, 7, [1, 2, 3])))
        data[-1] ^= 0x01
        with pytest.raises(FrameCorruption):
            decode_frame(bytes(data))

    def test_header_bit_flip_raises_corruption(self):
        data = bytearray(encode_frame(data_frame(1, 7, [1, 2, 3])))
        data[4] ^= 0x80  # inside the header fields, past the magic
        with pytest.raises(FrameCorruption):
            decode_frame(bytes(data))

    def test_crc_field_bit_flip_raises_corruption(self):
        frame = data_frame(1, 7, [1, 2, 3])
        encoded = encode_frame(frame)
        for offset in range(len(encoded)):
            for bit in range(8):
                data = bytearray(encoded)
                data[offset] ^= 1 << bit
                with pytest.raises(FrameError):
                    decode_frame(bytes(data))

    def test_corruption_is_a_frame_error(self):
        # Callers that guard with `except FrameError` must keep working.
        assert issubclass(FrameCorruption, FrameError)


class TestChaosHelpers:
    def test_epoch_req_carries_proposal_and_base(self):
        frame = epoch_req_frame(5, proposed_epoch=3, base_seq=42)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind is FrameKind.EPOCH_REQ
        assert (decoded.channel, decoded.seq, decoded.aux) == (5, 3, 42)

    def test_epoch_reply_carries_expected_epoch_and_sacks(self):
        frame = epoch_reply_frame(5, next_expected=17, epoch=3, sacks=(19, 21))
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind is FrameKind.EPOCH_REPLY
        assert (decoded.seq, decoded.aux) == (17, 3)
        assert decoded.payload == (19, 21)

    def test_heartbeat_round_trips(self):
        decoded = decode_frame(encode_frame(heartbeat_frame(4, beat=99)))
        assert decoded.kind is FrameKind.HEARTBEAT
        assert (decoded.channel, decoded.seq) == (4, 99)


class TestFieldValidation:
    """Satellite regression: every out-of-range field must raise
    ``FrameError`` at encode time — never silently truncate on the
    wire (the old code masked with ``& 0xFFFF`` / ``& WORD_MASK``)."""

    def test_channel_above_16_bits_rejected(self):
        frame = Frame(kind=FrameKind.DATA, channel=MAX_CHANNEL + 1, seq=1)
        with pytest.raises(FrameError):
            encode_frame(frame)

    def test_seq_above_32_bits_rejected(self):
        frame = Frame(kind=FrameKind.DATA, channel=1, seq=WORD_MASK + 1)
        with pytest.raises(FrameError):
            encode_frame(frame)

    def test_aux_above_32_bits_rejected(self):
        frame = Frame(kind=FrameKind.DATA, channel=1, seq=1,
                      aux=WORD_MASK + 1)
        with pytest.raises(FrameError):
            encode_frame(frame)

    def test_negative_fields_rejected(self):
        for bad in (Frame(kind=FrameKind.DATA, channel=-1, seq=0),
                    Frame(kind=FrameKind.DATA, channel=0, seq=-1),
                    Frame(kind=FrameKind.DATA, channel=0, seq=0, aux=-2),
                    Frame(kind=FrameKind.DATA, channel=0, seq=0,
                          payload=(-1,))):
            with pytest.raises(FrameError):
                encode_frame(bad)

    def test_boundary_values_still_encode(self):
        frame = Frame(kind=FrameKind.DATA, channel=MAX_CHANNEL,
                      seq=WORD_MASK, aux=WORD_MASK,
                      payload=(WORD_MASK, 0))
        assert decode_frame(encode_frame(frame)) == frame

    def test_error_message_names_the_bad_field(self):
        frame = Frame(kind=FrameKind.DATA, channel=MAX_CHANNEL + 7, seq=0)
        with pytest.raises(FrameError, match="channel"):
            encode_frame(frame)


class TestPropertyRoundTrip:
    """Seeded-random property tests: arbitrary frames must survive
    encode/decode exactly; every corruption and truncation must raise
    a typed error, never return a wrong frame."""

    def _arbitrary_frame(self, rng):
        kind = rng.choice(list(FrameKind))
        count = rng.choice((0, 1, 2, 3, 8, 17, 64, 256))
        return Frame(
            kind=kind,
            channel=rng.randint(0, MAX_CHANNEL),
            seq=rng.randint(0, WORD_MASK),
            aux=rng.randint(0, WORD_MASK),
            payload=tuple(rng.randint(0, WORD_MASK) for _ in range(count)),
        )

    def test_arbitrary_frames_round_trip(self):
        rng = random.Random(0xF4A3E5)
        for _ in range(300):
            frame = self._arbitrary_frame(rng)
            again = decode_frame(encode_frame(frame))
            assert again == frame

    def test_decode_accepts_memoryview_and_bytearray(self):
        frame = data_frame(channel=9, seq=3, payload=(1, 2, 3))
        wire = encode_frame(frame)
        assert decode_frame(memoryview(wire)) == frame
        assert decode_frame(bytearray(wire)) == frame

    def test_every_truncation_length_raises(self):
        wire = encode_frame(data_frame(channel=5, seq=8,
                                       payload=tuple(range(6))))
        for cut in range(len(wire)):
            with pytest.raises(FrameError):
                decode_frame(wire[:cut])

    def test_corrupt_byte_at_every_offset_raises(self):
        """Flip one bit at every byte offset: the CRC (or a header
        check) must catch all of them — no offset may decode to a
        silently different frame."""
        frame = data_frame(channel=5, seq=8, aux=2, payload=tuple(range(6)))
        wire = encode_frame(frame)
        for offset in range(len(wire)):
            for bit in (0x01, 0x80):
                damaged = bytearray(wire)
                damaged[offset] ^= bit
                with pytest.raises(FrameError):
                    decode_frame(bytes(damaged))


class TestBatchContainer:
    """The container frame: coalesced sub-frames must decode back
    exactly, in order, with corruption and truncation localized."""

    def _frames(self, n, rng=None):
        rng = rng or random.Random(0xBA7C4)
        return [
            data_frame(channel=rng.randint(0, 64), seq=seq,
                       payload=tuple(rng.randint(0, WORD_MASK)
                                     for _ in range(rng.randint(0, 8))))
            for seq in range(n)
        ]

    def test_batch_round_trips_in_order(self):
        frames = self._frames(9)
        batch = encode_batch([encode_frame(f) for f in frames])
        assert is_batch(batch)
        decoded = [decode_frame(view) for view in iter_batch(batch)]
        assert decoded == frames

    def test_single_frame_datagram_is_not_a_batch(self):
        wire = encode_frame(data_frame(channel=1, seq=1, payload=(1,)))
        assert not is_batch(wire)

    def test_arbitrary_batches_round_trip(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(60):
            frames = self._frames(rng.randint(1, 20), rng)
            batch = encode_batch([encode_frame(f) for f in frames])
            assert [decode_frame(v) for v in iter_batch(batch)] == frames

    def test_empty_batch_rejected(self):
        with pytest.raises(FrameError):
            encode_batch([])

    def test_truncated_batch_raises_at_every_cut(self):
        frames = self._frames(4)
        batch = encode_batch([encode_frame(f) for f in frames])
        for cut in range(len(batch)):
            with pytest.raises(FrameError):
                list(iter_batch(batch[:cut]))

    def test_trailing_garbage_after_last_subframe_rejected(self):
        batch = encode_batch([encode_frame(f) for f in self._frames(2)])
        with pytest.raises(FrameError):
            list(iter_batch(batch + b"\x00"))

    def test_corruption_is_localized_to_one_subframe(self):
        """A bit flip inside sub-frame k must fail *that* sub-frame's
        CRC while its siblings still decode — loss stays per-frame."""
        frames = self._frames(5)
        wires = [encode_frame(f) for f in frames]
        batch = bytearray(encode_batch(wires))
        # Find the middle sub-frame's payload region and damage it.
        offset = 4  # container prefix
        for wire in wires[:2]:
            offset += 2 + len(wire)
        victim_at = offset + 2 + len(wires[2]) - 1  # last byte of frame 2
        batch[victim_at] ^= 0x40
        results = []
        for view in iter_batch(bytes(batch)):
            try:
                results.append(decode_frame(view))
            except FrameCorruption:
                results.append(None)
        assert results[2] is None
        survivors = [r for i, r in enumerate(results) if i != 2]
        assert survivors == [frames[0], frames[1], frames[3], frames[4]]

    def test_corrupt_byte_at_every_batch_offset_never_misdecodes(self):
        """Damage every byte of a container: each sub-frame either
        decodes to exactly its original or raises — never a wrong
        frame.  (Framing damage may surface as a container-level
        FrameError; that is tail loss, not corruption.)"""
        frames = self._frames(3)
        wires = [encode_frame(f) for f in frames]
        batch = encode_batch(wires)
        for offset in range(len(batch)):
            damaged = bytearray(batch)
            damaged[offset] ^= 0x10
            try:
                for i, view in enumerate(iter_batch(bytes(damaged))):
                    try:
                        decoded = decode_frame(view)
                    except FrameError:
                        continue
                    if i < len(frames):
                        assert decoded == frames[i]
            except FrameError:
                pass  # framing damage: detected, not silently decoded


class TestTraceContext:
    """The optional wire-propagated trace-context suffix (ISSUE 8)."""

    CTX_TS = 0x1_2345_6789A  # > 32 bits, exercises the hi/lo split

    def _ctx(self, origin=0xDEADBEEF, ts_ns=CTX_TS):
        return trace_context_words(origin, ts_ns)

    def test_suffix_round_trips(self):
        frame = data_frame(channel=3, seq=41, payload=[1, 2, 3], aux=7)
        wire = encode_frame(frame, self._ctx())
        decoded = decode_frame(wire)
        assert decoded.payload == (1, 2, 3)
        assert decoded.origin == 0xDEADBEEF
        assert decoded.origin_ts_ns == self.CTX_TS

    def test_traced_and_untraced_frames_compare_equal_on_wire_fields(self):
        frame = data_frame(channel=3, seq=41, payload=[1, 2, 3], aux=7)
        decoded = decode_frame(encode_frame(frame, self._ctx()))
        assert (decoded.kind, decoded.channel, decoded.seq, decoded.aux,
                decoded.payload) == (frame.kind, frame.channel, frame.seq,
                                     frame.aux, frame.payload)

    def test_untraced_decode_leaves_context_absent(self):
        frame = data_frame(channel=1, seq=2, payload=[9, 9, 9])
        decoded = decode_frame(encode_frame(frame))
        assert decoded.origin == -1
        assert decoded.origin_ts_ns == -1

    def test_flag_set_on_kind_byte_only_when_traced(self):
        frame = data_frame(channel=1, seq=2, payload=[5])
        plain = encode_frame(frame)
        traced = encode_frame(frame, self._ctx())
        assert plain[1] & TRACE_FLAG == 0
        assert traced[1] & TRACE_FLAG
        assert len(traced) == len(plain) + 4 * TRACE_CTX_WORDS

    def test_parse_trace_context_inverts_trace_context_words(self):
        words = trace_context_words(7, self.CTX_TS)
        assert parse_trace_context(words) == (7, self.CTX_TS)

    def test_empty_payload_frame_carries_context(self):
        frame = Frame(kind=FrameKind.CREDIT_UPDATE, channel=2, seq=0, aux=64)
        decoded = decode_frame(encode_frame(frame, self._ctx(origin=42)))
        assert decoded.payload == ()
        assert decoded.origin == 42

    def test_oversized_payload_plus_context_rejected(self):
        frame = data_frame(
            channel=1, seq=0,
            payload=list(range(MAX_PAYLOAD_WORDS - TRACE_CTX_WORDS + 1)))
        encode_frame(frame)  # fits untraced
        with pytest.raises(FrameError):
            encode_frame(frame, self._ctx())

    def test_flagged_frame_too_short_for_context_rejected(self):
        """A TRACE_FLAG frame whose payload cannot hold the suffix is
        wire damage, not a decodable frame."""
        frame = Frame(kind=FrameKind.DATA, channel=1, seq=0,
                      payload=(1, 2))
        import struct
        import zlib

        wire = bytearray(encode_frame(frame))
        wire[1] |= TRACE_FLAG
        # Recompute the CRC so only the flag is "damaged" — the reject
        # must come from the too-short-for-context check, not the CRC.
        crc = zlib.crc32(bytes(wire[18:]), zlib.crc32(bytes(wire[:14])))
        wire[14:18] = struct.pack("!I", crc)
        with pytest.raises(FrameError) as excinfo:
            decode_frame(bytes(wire))
        assert "trace context" in str(excinfo.value)

    def test_traced_subframes_survive_batching(self):
        frames = [data_frame(channel=1, seq=i, payload=[i]) for i in range(3)]
        wires = [encode_frame(f, trace_context_words(9, 1000 + i))
                 for i, f in enumerate(frames)]
        batch = encode_batch(wires)
        decoded = [decode_frame(v) for v in iter_batch(batch)]
        assert [d.origin for d in decoded] == [9, 9, 9]
        assert [d.origin_ts_ns for d in decoded] == [1000, 1001, 1002]
        assert [d.payload for d in decoded] == [(0,), (1,), (2,)]
