"""Tests for the N-peer fabric: lifecycle, multiplexing, teardown.

The scenarios the pairwise harness could never exercise: peers joining
and leaving while traffic is in flight, many concurrent ordered channels
multiplexed over shared endpoints, and window back-pressure with several
senders funnelling into one receiver.
"""

import asyncio

import pytest

from repro.runtime.fabric import (
    FIRST_FABRIC_CHANNEL,
    Fabric,
    FabricError,
    all_pairs,
    ring_pairs,
)
from repro.runtime.protocols import ProtocolFailure


class TestPeerLifecycle:
    def test_join_and_leave(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            await fabric.add_peer("b")
            names = fabric.peer_names
            await fabric.remove_peer("a")
            remaining = fabric.peer_names
            await fabric.close()
            return names, remaining, fabric.peers_joined, fabric.peers_left

        names, remaining, joined, left = drive(body())
        assert set(names) == {"a", "b"}
        assert remaining == ["b"]
        assert (joined, left) == (2, 1)

    def test_duplicate_peer_rejected(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            try:
                with pytest.raises(FabricError):
                    await fabric.add_peer("a")
            finally:
                await fabric.close()

        drive(body())

    def test_unknown_peer_rejected(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            try:
                with pytest.raises(FabricError):
                    await fabric.connect("a", "ghost")
                with pytest.raises(FabricError):
                    await fabric.remove_peer("ghost")
            finally:
                await fabric.close()

        drive(body())

    def test_self_connection_rejected(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            try:
                with pytest.raises(FabricError):
                    await fabric.connect("a", "a")
            finally:
                await fabric.close()

        drive(body())

    def test_closed_fabric_rejects_everything(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            await fabric.close()
            with pytest.raises(FabricError):
                await fabric.add_peer("b")

        drive(body())

    def test_peer_leaves_mid_traffic_gracefully(self, drive):
        """A graceful leave drains the peer's connections first: every
        word sent before the leave is delivered, nothing is lost."""

        async def body():
            fabric = Fabric(mode="cm5", drop_rate=0.05, reorder_rate=0.1,
                            seed=11)
            for name in ("a", "b", "c"):
                await fabric.add_peer(name)
            ab = await fabric.connect("a", "b")
            cb = await fabric.connect("c", "b")
            await ab.send(list(range(40)))
            await cb.send(list(range(100, 140)))
            # Leave while retransmissions may still be in flight.
            await fabric.remove_peer("a", drain=True)
            await cb.drain()
            got_ab = ab.channel.receive_buffer.read()
            got_cb = cb.channel.receive_buffer.read()
            open_after = fabric.open_connections
            await fabric.close()
            return got_ab, got_cb, open_after

        got_ab, got_cb, open_after = drive(body())
        assert got_ab == list(range(40))
        assert got_cb == list(range(100, 140))
        assert open_after == 1  # only c->b survived the leave

    def test_hard_leave_expires_inflight_datagrams(self, drive):
        """A hard (drain=False) leave abandons in-flight traffic: the
        hub counts it as expired rather than delivering to the corpse."""

        async def body():
            fabric = Fabric(mode="cm5", reorder_rate=0.0, latency=0.01)
            await fabric.add_peer("a")
            await fabric.add_peer("b")
            conn = await fabric.connect("a", "b")
            await conn.send(list(range(16)))  # in flight for 10 ms
            await fabric.remove_peer("b", drain=False)
            await asyncio.sleep(0.05)
            expired = fabric.hub.expired
            await fabric.close()
            return expired

        assert drive(body()) > 0


class TestMultiplexing:
    def test_connections_get_distinct_channel_ids(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            await fabric.add_peer("b")
            conns = [await fabric.connect("a", "b") for _ in range(5)]
            cids = [conn.cid for conn in conns]
            await fabric.close()
            return cids

        cids = drive(body())
        assert len(set(cids)) == 5
        assert all(cid >= FIRST_FABRIC_CHANNEL for cid in cids)

    def test_concurrent_channels_between_one_pair_stay_independent(self, drive):
        """Several ordered channels over the same two endpoints must not
        bleed sequence state into each other, even with faults on."""

        async def body():
            fabric = Fabric(mode="cm5", drop_rate=0.05, reorder_rate=0.2,
                            seed=5)
            await fabric.add_peer("a")
            await fabric.add_peer("b")
            conns = [await fabric.connect("a", "b") for _ in range(4)]
            payloads = [list(range(base, base + 30))
                        for base in (0, 1000, 2000, 3000)]

            async def pump(conn, words):
                await conn.send(words)
                await conn.drain()

            await asyncio.gather(*(
                pump(conn, words) for conn, words in zip(conns, payloads)
            ))
            got = [conn.channel.receive_buffer.read() for conn in conns]
            await fabric.close()
            return got, payloads

        got, payloads = drive(body())
        assert got == payloads

    def test_concurrent_drain_across_many_channels(self, drive):
        """Draining every channel concurrently (the load generator's
        shape) completes without cross-channel interference."""

        async def body():
            fabric = Fabric(mode="cm5", drop_rate=0.03, reorder_rate=0.1,
                            seed=7)
            names = ["a", "b", "c", "d"]
            for name in names:
                await fabric.add_peer(name)
            conns = [await fabric.connect(src, dst)
                     for src, dst in ring_pairs(names)]
            for i, conn in enumerate(conns):
                await conn.send(list(range(i * 100, i * 100 + 25)))
            await asyncio.gather(*(conn.drain() for conn in conns))
            ok = all(
                conn.channel.receive_buffer.read()
                == list(range(i * 100, i * 100 + 25))
                for i, conn in enumerate(conns)
            )
            outstanding = [conn.outstanding for conn in conns]
            await fabric.close()
            return ok, outstanding

        ok, outstanding = drive(body())
        assert ok
        assert outstanding == [0, 0, 0, 0]

    def test_backpressure_with_many_senders_into_one_endpoint(self, drive):
        """Tiny windows + several senders targeting one receiver: every
        sender must make progress through back-pressure, not deadlock or
        interleave into corruption."""

        async def body():
            fabric = Fabric(mode="cm5", drop_rate=0.02, reorder_rate=0.1,
                            seed=3)
            names = ["sink", "s0", "s1", "s2"]
            for name in names:
                await fabric.add_peer(name)
            conns = [await fabric.connect(src, "sink", window=2)
                     for src in ("s0", "s1", "s2")]

            async def pump(conn, base):
                await conn.send(list(range(base, base + 40)))
                await conn.drain()

            await asyncio.gather(*(
                pump(conn, i * 1000) for i, conn in enumerate(conns)
            ))
            got = [conn.channel.receive_buffer.read() for conn in conns]
            await fabric.close()
            return got

        got = drive(body())
        assert got == [list(range(b, b + 40)) for b in (0, 1000, 2000)]


class TestConnectionLifecycle:
    def test_close_is_idempotent_and_forgets_the_connection(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            await fabric.add_peer("b")
            conn = await fabric.connect("a", "b")
            await conn.send([1, 2, 3])
            await conn.close()
            await conn.close()  # second close is a no-op
            opened, closed = fabric.connections_opened, fabric.connections_closed
            count = fabric.open_connections
            await fabric.close()
            return opened, closed, count

        assert drive(body()) == (1, 1, 0)

    def test_send_after_close_fails_loudly(self, drive):
        async def body():
            fabric = Fabric(mode="cr")
            await fabric.add_peer("a")
            await fabric.add_peer("b")
            conn = await fabric.connect("a", "b")
            await conn.close()
            try:
                with pytest.raises(ProtocolFailure):
                    await conn.send([1])
            finally:
                await fabric.close()

        drive(body())

    def test_fabric_close_reaps_every_connection_and_task(self, drive):
        """Nothing — wheel tasks, posted sends, delayed acks — may
        outlive fabric.close()."""

        async def body():
            baseline = set(asyncio.all_tasks())
            fabric = Fabric(mode="cm5", drop_rate=0.05, seed=2)
            names = [f"p{i}" for i in range(4)]
            for name in names:
                await fabric.add_peer(name)
            conns = [await fabric.connect(src, dst)
                     for src, dst in all_pairs(names)[:6]]
            for conn in conns:
                await conn.send(list(range(10)))
            await fabric.close()  # hard close, traffic possibly in flight
            await asyncio.sleep(0.05)
            leaked = [t for t in asyncio.all_tasks() - baseline
                      if not t.done()]
            return fabric.open_connections, leaked

        open_count, leaked = drive(body())
        assert open_count == 0
        assert leaked == []


class TestTopologies:
    def test_ring_pairs(self):
        assert ring_pairs(["a", "b", "c"]) == [
            ("a", "b"), ("b", "c"), ("c", "a")]

    def test_all_pairs(self):
        pairs = all_pairs(["a", "b", "c"])
        assert len(pairs) == 6
        assert ("a", "a") not in pairs


class TestUDPFabric:
    def test_udp_fabric_round_trip(self, drive):
        async def body():
            fabric = Fabric(mode="cm5", transport="udp")
            await fabric.add_peer("a")
            await fabric.add_peer("b")
            conn = await fabric.connect("a", "b")
            await conn.send(list(range(20)))
            await conn.drain()
            got = conn.channel.receive_buffer.read()
            await fabric.close()
            return got

        assert drive(body()) == list(range(20))

    def test_udp_fabric_rejects_cr_mode_and_fault_knobs(self):
        with pytest.raises(ValueError):
            Fabric(mode="cr", transport="udp")
        with pytest.raises(ValueError):
            Fabric(mode="cm5", transport="udp", drop_rate=0.1)
