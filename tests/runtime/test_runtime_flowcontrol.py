"""Tests for credit-based flow control: window state machines, the
blocked/unblocked sender path, lost-grant healing, overload shedding,
and credit survival through a chaos partition."""

import asyncio

import pytest

from repro.runtime import (
    BackpressureSignal,
    ChaosConfig,
    FlowControlConfig,
    LoadConfig,
    ReceiverWindow,
    SenderWindow,
    credit_words,
    make_loopback_pair,
    open_live_channel,
    parse_credit_words,
    run_chaos,
    run_load,
)
from repro.runtime.reliability import BackoffPolicy

FAST = BackoffPolicy(initial=0.01, factor=1.5, ceiling=0.1, max_retries=12)

#: A window small enough that any sustained transfer must exhaust it.
TINY = FlowControlConfig(window_bytes=128, window_msgs=4,
                         probe_interval=0.02)


async def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.005)


class TestConfigAndWire:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FlowControlConfig(window_bytes=0)
        with pytest.raises(ValueError):
            FlowControlConfig(window_msgs=0)
        with pytest.raises(ValueError):
            FlowControlConfig(low_watermark_frac=1.5)
        with pytest.raises(ValueError):
            FlowControlConfig(soft_fraction=0.05, hard_fraction=0.15)
        with pytest.raises(ValueError):
            FlowControlConfig(refresh_every=0)
        with pytest.raises(ValueError):
            FlowControlConfig(probe_interval=0.0)

    def test_credit_words_round_trip_past_32_bits(self):
        granted_bytes = (7 << 40) + 12345
        granted_msgs = (3 << 33) + 99
        words = credit_words(granted_bytes, granted_msgs)
        assert len(words) == 4
        assert all(0 <= w <= 0xFFFFFFFF for w in words)
        assert parse_credit_words(words) == (granted_bytes, granted_msgs)

    def test_parse_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            parse_credit_words((1, 2, 3))


class TestReceiverWindow:
    def test_initial_grant_is_one_window(self):
        win = ReceiverWindow(FlowControlConfig(window_bytes=1000,
                                               window_msgs=10))
        assert win.outstanding_bytes == 1000
        assert win.outstanding_msgs == 10
        assert win.in_buffer_bytes == 0

    def test_low_watermark_triggers_update(self):
        win = ReceiverWindow(FlowControlConfig(
            window_bytes=1000, window_msgs=100, low_watermark_frac=0.25,
            refresh_every=10_000))
        # Consume down to 300 outstanding: still above the 250 watermark.
        assert win.on_data(700) is False
        # Crossing under the watermark arms the advertisement.
        assert win.on_data(100) is True
        assert win.update_due

    def test_advertise_grants_released_plus_window_and_clears_due(self):
        win = ReceiverWindow(FlowControlConfig(
            window_bytes=1000, window_msgs=100, refresh_every=10_000))
        win.on_data(800)
        win.on_deliver(500)
        granted_bytes, granted_msgs = win.advertise()
        # Never promise past physical capacity: released + one window.
        assert granted_bytes == 500 + 1000
        assert granted_msgs == 1 + 100
        assert not win.update_due
        # Grants are monotone: a second advertisement never shrinks.
        again_bytes, again_msgs = win.advertise()
        assert again_bytes >= granted_bytes
        assert again_msgs >= granted_msgs

    def test_refresh_cadence_forces_periodic_update(self):
        win = ReceiverWindow(FlowControlConfig(
            window_bytes=1 << 20, window_msgs=1 << 20, refresh_every=4))
        assert [win.on_data(4) for _ in range(4)] == [
            False, False, False, True]

    def test_overrun_counted_never_raised(self):
        win = ReceiverWindow(FlowControlConfig(window_bytes=100,
                                               window_msgs=2))
        win.on_data(60)
        win.on_data(60)   # past the byte grant
        win.on_data(60)   # past the message grant too
        assert win.overruns >= 2

    def test_peak_occupancy_tracks_high_water(self):
        win = ReceiverWindow(FlowControlConfig(window_bytes=1000,
                                               window_msgs=100))
        win.on_data(300)
        win.on_data(300)
        win.on_deliver(600)
        win.on_data(100)
        assert win.peak_buffered_bytes == 600
        assert win.in_buffer_bytes == 100

    def test_crash_releases_occupancy_and_forces_readvertise(self):
        win = ReceiverWindow(FlowControlConfig(window_bytes=1000,
                                               window_msgs=100))
        win.on_data(400)
        assert win.in_buffer_bytes == 400
        win.on_crash()
        assert win.in_buffer_bytes == 0
        assert win.update_due

    def test_grant_worthwhile_suppresses_slivers(self):
        win = ReceiverWindow(FlowControlConfig(
            window_bytes=1000, window_msgs=100, grant_chunk_frac=0.5,
            refresh_every=10_000))
        win.on_data(300)
        win.on_deliver(100)   # would move the grant by only 100 < 500
        assert not win.grant_worthwhile()
        win.on_deliver(200)
        win.on_data(500)      # outstanding 200 < 250 => due wins regardless
        assert win.grant_worthwhile()


class TestSenderWindow:
    def test_signal_thresholds(self):
        flow = SenderWindow(FlowControlConfig(
            window_bytes=1000, window_msgs=1000,
            soft_fraction=0.15, hard_fraction=0.05))
        assert flow.signal() is BackpressureSignal.OK
        flow.consume(860)
        assert flow.signal() is BackpressureSignal.SOFT
        flow.consume(100)
        assert flow.signal() is BackpressureSignal.HARD

    def test_signal_hard_when_next_send_cannot_fit(self):
        flow = SenderWindow(FlowControlConfig(window_bytes=1000,
                                              window_msgs=1000))
        flow.consume(500)
        assert flow.signal(next_bytes=400) is BackpressureSignal.OK
        assert flow.signal(next_bytes=600) is BackpressureSignal.HARD

    def test_exact_fit_send_is_ok_not_hard(self):
        """A send that exactly equals the remaining credit fits — the
        signal must say OK even when the leftover fraction is under the
        HARD threshold (the fraction is advice; the fit is a fact)."""
        flow = SenderWindow(FlowControlConfig(
            window_bytes=1000, window_msgs=1000,
            soft_fraction=0.15, hard_fraction=0.05))
        flow.consume(960)   # 40 bytes left: frac 0.04 <= hard_fraction
        assert flow.signal() is BackpressureSignal.HARD  # advisory view
        assert flow.signal(next_bytes=40) is BackpressureSignal.OK
        assert flow.signal(next_bytes=41) is BackpressureSignal.HARD

    def test_bytes_exhausted_but_messages_free_is_hard(self):
        flow = SenderWindow(FlowControlConfig(window_bytes=100,
                                              window_msgs=1000))
        flow.consume(100)
        assert flow.available_msgs > 0
        assert flow.signal(next_bytes=4) is BackpressureSignal.HARD

    def test_messages_exhausted_but_bytes_free_is_hard(self):
        flow = SenderWindow(FlowControlConfig(window_bytes=100_000,
                                              window_msgs=2))
        flow.consume(4)
        flow.consume(4)
        assert flow.available_bytes > 0
        assert flow.signal(next_bytes=4) is BackpressureSignal.HARD
        # The last message slot plus fitting bytes is still a fit.
        flow.apply(100_000, 3)
        assert flow.signal(next_bytes=4) is BackpressureSignal.OK

    def test_apply_is_max_merge_idempotent(self):
        flow = SenderWindow(FlowControlConfig(window_bytes=1000,
                                              window_msgs=10))
        assert flow.apply(5000, 50) is True
        # Stale and duplicate advertisements are harmless no-ops.
        assert flow.apply(4000, 40) is False
        assert flow.apply(5000, 50) is False
        assert (flow.limit_bytes, flow.limit_msgs) == (5000, 50)

    def test_lost_update_healed_by_any_later_advertisement(self):
        # The receiver advertises G1 < G2 < G3; G2 is lost on the wire.
        receiver = ReceiverWindow(FlowControlConfig(window_bytes=1000,
                                                    window_msgs=100))
        grants = []
        for _ in range(3):
            receiver.on_data(200)
            receiver.on_deliver(200)
            grants.append(receiver.advertise())
        healed = SenderWindow(FlowControlConfig(window_bytes=1000,
                                                window_msgs=100))
        healed.apply(*grants[0])
        healed.apply(*grants[2])          # G2 never arrives
        complete = SenderWindow(FlowControlConfig(window_bytes=1000,
                                                  window_msgs=100))
        for grant in grants:
            complete.apply(*grant)
        assert healed.limit_bytes == complete.limit_bytes
        assert healed.limit_msgs == complete.limit_msgs

    def test_grant_wait_times_out_without_credit(self, drive):
        async def body():
            flow = SenderWindow(FlowControlConfig(window_bytes=100,
                                                  window_msgs=2))
            flow.consume(100)
            assert not flow.can_send(4)
            assert await flow.grant_wait(4, timeout=0.02) is False

        drive(body())

    def test_wait_for_credit_probes_until_granted(self, drive):
        async def body():
            flow = SenderWindow(FlowControlConfig(
                window_bytes=100, window_msgs=2, probe_interval=0.01))
            flow.consume(100)
            probed = asyncio.Event()

            async def probe():
                # The receiver's answer to a probe: a fresh full-state
                # advertisement, modeled here as a direct apply.
                probed.set()
                flow.apply(300, 10)

            probes = await flow.wait_for_credit(4, probe=probe)
            assert probed.is_set()
            assert probes >= 1
            assert flow.can_send(4)

        drive(body())


class TestLiveChannelFlow:
    def test_exhaustion_blocks_then_unblocks(self, drive):
        """A transfer much larger than the credit window must stall at
        least once and still complete once grants flow back."""

        async def body():
            pair = make_loopback_pair(mode="cm5")
            try:
                channel = open_live_channel(
                    pair.src, pair.dst, packet_words=8, backoff=FAST,
                    ack_every=1, ack_delay=0.001, flow=TINY,
                )
                words = list(range(400))
                await channel.send(words)
                await channel.drain()
                await wait_until(
                    lambda: len(channel.receive_buffer) >= len(words))
                assert channel.receive_buffer.read() == words
                counters = pair.src.counters
                assert counters.get("stream_tx.flow.blocked") >= 1
                assert counters.get("stream_tx.flow.blocked_ns") > 0
                assert counters.get("stream_tx.flow.updates_applied") >= 1
                await channel.close()
            finally:
                await pair.close()

        drive(body())

    def test_cr_mode_meters_credit_with_standalone_updates(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                channel = open_live_channel(
                    pair.src, pair.dst, packet_words=8, flow=TINY,
                )
                words = list(range(400))
                await channel.send(words)
                await wait_until(
                    lambda: len(channel.receive_buffer) >= len(words))
                assert channel.receive_buffer.read() == words
                # CR has no acks to piggyback on: every top-up is a
                # standalone CREDIT_UPDATE datagram.
                assert pair.dst.credit_frames_sent >= 1
                assert pair.src.counters.get(
                    "stream_tx.flow.updates_applied") >= 1
                await channel.close()
            finally:
                await pair.close()

        drive(body())

    def test_flow_signal_surface(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                metered = open_live_channel(
                    pair.src, pair.dst, packet_words=8, flow=TINY)
                assert metered.flow_signal() is BackpressureSignal.OK
                # Asking about a send bigger than the whole window is
                # HARD by construction.
                assert (metered.flow_signal(next_bytes=10_000)
                        is BackpressureSignal.HARD)
                await metered.close()
            finally:
                await pair.close()

        drive(body())

    def test_unmetered_channel_is_always_ok(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                channel = open_live_channel(pair.src, pair.dst,
                                            packet_words=8)
                assert channel.flow_signal() is BackpressureSignal.OK
                assert (channel.flow_signal(next_bytes=1 << 30)
                        is BackpressureSignal.OK)
                await channel.send(list(range(64)))
                await wait_until(lambda: len(channel.receive_buffer) >= 64)
                await channel.close()
            finally:
                await pair.close()

        drive(body())


class TestOverloadAudit:
    def test_shed_messages_never_audited_as_delivered(self, drive):
        """HARD-shed messages are counted and excluded *before* ledger
        stamping, so the exactly-once audit stays exact: everything sent
        is delivered, nothing shed ever shows up as delivered."""

        async def body():
            config = LoadConfig(
                peers=2, channels=4, messages=8, message_words=32,
                overload=10.0, audit=True, seed=11,
                flow=FlowControlConfig(window_bytes=2048, window_msgs=16),
            )
            result = await run_load(config)
            assert result.completed, result.errors
            assert result.messages_shed > 0
            assert result.messages_offered == (
                result.messages_sent + result.messages_shed)
            assert result.messages_delivered == result.messages_sent
            assert result.audit is not None and result.audit.clean
            # Sanity on the derived shares the bench gates consume.
            assert 0.0 < result.shed_share < 1.0
            assert result.flow_control_share > 0.0

        drive(body())

    def test_overload_peaks_bounded_by_advertised_windows(self, drive):
        async def body():
            config = LoadConfig(
                peers=2, channels=4, messages=8, message_words=32,
                overload=10.0, audit=True, seed=11,
            )
            result = await run_load(config)
            assert result.completed, result.errors
            peaks = result.peaks
            assert peaks["buffered_bytes"] <= peaks["window_bytes"]
            assert peaks["reorder_parked"] <= peaks["reorder_window"]
            assert peaks["tracked"] <= peaks["send_window"]

        drive(body())


class TestChaosCreditRecovery:
    def test_partition_starves_credit_then_heals_clean(self, drive):
        """The overload-partition scenario: a partition eats the credit
        grants mid-traffic; after the heal every blocked sender must
        recover its credit state (piggyback, refresh, or probe) and the
        end-to-end audit must come back exactly-once clean."""

        async def body():
            config = ChaosConfig(mode="cm5", peers=4, lanes=4, messages=20)
            result = await run_chaos(config,
                                     scenario="overload-partition")
            assert result.completed, result.errors
            assert result.audit.clean
            assert not result.broken_lanes
            # The credit machinery demonstrably ran: grants crossed the
            # wire and the flow bucket accrued measurable time.
            assert result.wire.get("flow.credits_granted", 0) > 0
            assert result.flow_control_share > 0.0

        drive(body(), timeout=30.0)
