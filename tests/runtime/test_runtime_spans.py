"""Unit tests for wall-clock feature attribution."""

import time

import pytest

from repro.arch.attribution import Feature
from repro.runtime.spans import TimeAttribution


def spin(ns: int) -> None:
    """Busy-wait for roughly ``ns`` nanoseconds."""
    deadline = time.perf_counter_ns() + ns
    while time.perf_counter_ns() < deadline:
        pass


class TestSpans:
    def test_span_charges_its_feature(self):
        attr = TimeAttribution()
        with attr.span(Feature.IN_ORDER):
            spin(200_000)
        assert attr.ns(Feature.IN_ORDER) >= 200_000
        assert attr.ns(Feature.BASE) == 0
        assert attr.span_count(Feature.IN_ORDER) == 1

    def test_nested_span_is_exclusive(self):
        attr = TimeAttribution()
        with attr.span(Feature.BASE):
            spin(200_000)
            with attr.span(Feature.FAULT_TOLERANCE):
                spin(200_000)
            spin(200_000)
        base = attr.ns(Feature.BASE)
        inner = attr.ns(Feature.FAULT_TOLERANCE)
        assert base >= 400_000
        assert inner >= 200_000
        # No double counting: the parent was paused while the child ran.
        assert attr.total_ns == base + inner

    def test_time_outside_spans_is_uncharged(self):
        attr = TimeAttribution()
        with attr.span(Feature.BASE):
            pass
        before = attr.total_ns
        spin(500_000)
        assert attr.total_ns == before

    def test_non_feature_rejected(self):
        attr = TimeAttribution()
        with pytest.raises(TypeError):
            attr.span("base")

    def test_exception_safe(self):
        attr = TimeAttribution()
        with pytest.raises(ValueError):
            with attr.span(Feature.BASE):
                raise ValueError("boom")
        # The stack unwound; a new span still works.
        with attr.span(Feature.IN_ORDER):
            pass
        assert attr.span_count(Feature.IN_ORDER) == 1


class TestAccounting:
    def test_overhead_excludes_base_and_user(self):
        attr = TimeAttribution()
        attr.charge_ns(Feature.BASE, 600)
        attr.charge_ns(Feature.IN_ORDER, 250)
        attr.charge_ns(Feature.FAULT_TOLERANCE, 150)
        attr.charge_ns(Feature.USER, 1000)
        assert attr.total_ns == 1000
        assert attr.overhead_ns == 400
        assert attr.overhead_fraction == pytest.approx(0.4)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            TimeAttribution().charge_ns(Feature.BASE, -1)

    def test_merge_folds_totals_and_counts(self):
        first, second = TimeAttribution(), TimeAttribution()
        first.charge_ns(Feature.BASE, 100)
        with second.span(Feature.BASE):
            pass
        second.charge_ns(Feature.BASE, 50)
        first.merge(second)
        assert first.ns(Feature.BASE) >= 150
        assert first.span_count(Feature.BASE) == 1

    def test_snapshot_is_detached(self):
        attr = TimeAttribution()
        attr.charge_ns(Feature.BASE, 10)
        snap = attr.snapshot()
        attr.charge_ns(Feature.BASE, 10)
        assert snap[Feature.BASE] == 10

    def test_reset(self):
        attr = TimeAttribution()
        attr.charge_ns(Feature.BASE, 10)
        attr.reset()
        assert attr.total_ns == 0

    def test_reset_inside_span_names_the_leaked_feature(self):
        """reset() with live spans must fail loudly, naming what leaked
        (innermost last) — the drain()-style assertion."""
        attr = TimeAttribution()
        with pytest.raises(RuntimeError) as exc:
            with attr.span(Feature.BASE):
                with attr.span(Feature.FAULT_TOLERANCE):
                    attr.reset()
        message = str(exc.value)
        assert "base -> fault_tolerance" in message
        # The failed reset must not have corrupted the stack: once the
        # spans unwind normally, reset succeeds.
        attr.reset()
        assert attr.total_ns == 0

    def test_crashed_coroutine_unwinds_spans(self):
        """A protocol coroutine that raises inside a span must unwind
        via __exit__ — afterwards the stack is empty and reset() works."""
        import asyncio

        attr = TimeAttribution()

        async def crashing_protocol():
            with attr.span(Feature.IN_ORDER):
                with attr.span(Feature.FAULT_TOLERANCE):
                    raise OSError("transport blew up mid-span")

        with pytest.raises(OSError):
            asyncio.run(crashing_protocol())
        assert attr.current is None
        assert attr.span_count(Feature.FAULT_TOLERANCE) == 1
        attr.reset()  # would raise if the crash leaked a span
        assert attr.total_ns == 0

    def test_on_charge_observes_every_exclusive_slice(self):
        attr = TimeAttribution()
        seen = []
        attr.on_charge = lambda feature, ns: seen.append((feature, ns))
        with attr.span(Feature.BASE):
            with attr.span(Feature.IN_ORDER):
                pass
        attr.charge_ns(Feature.USER, 42)
        features = [feature for feature, _ns in seen]
        # Parent pause slice, child exit, parent exit, manual charge.
        assert features == [Feature.BASE, Feature.IN_ORDER, Feature.BASE,
                            Feature.USER]
        observed = {}
        for feature, ns in seen:
            observed[feature] = observed.get(feature, 0) + ns
        for feature, total in observed.items():
            assert total == attr.ns(feature)
