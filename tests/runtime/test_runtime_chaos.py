"""Tests for the chaos engine: scripted faults, failure detection,
epoch recovery, and the end-to-end exactly-once audit.

The scenario tests are small soaks — a few peers, a few lanes — but
every one of them ends the only way a chaos run is allowed to end: a
clean audit (exactly-once, in-order), with permanently dead peers
surfacing as *typed* ``ChannelBroken`` lanes rather than silent loss
or a hang.
"""

import asyncio

import pytest

from repro.runtime import (
    Fabric,
    LoopbackHub,
)
from repro.runtime.chaos import (
    ChaosConfig,
    ChaosInjector,
    FailureDetector,
    HeartbeatConfig,
    PeerState,
    SCENARIOS,
    chaos_pairs,
    run_chaos,
)

#: Scenario soak ceiling — each cell runs scripted sleeps totalling
#: around a second, plus settle time.
SOAK_TIMEOUT = 25.0


def small_config(mode: str) -> ChaosConfig:
    return ChaosConfig(mode=mode, peers=4, lanes=4, messages=18,
                       send_interval=0.008)


class TestInjector:
    def test_partition_suppresses_both_directions(self, drive):
        async def body():
            hub = LoopbackHub.cm5(reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            got = []
            b.set_receiver(lambda data, src: got.append(data))
            injector = ChaosInjector(hub)
            injector.partition_link("a", "b")
            await a.send("b", b"lost")
            await asyncio.sleep(0.02)
            injector.heal_all()
            await a.send("b", b"through")
            await asyncio.sleep(0.02)
            return got, hub.partitioned

        got, partitioned = drive(body())
        assert got == [b"through"]
        assert partitioned == 1

    def test_asymmetric_block_passes_reverse_direction(self, drive):
        async def body():
            hub = LoopbackHub.cm5(reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            at_a, at_b = [], []
            a.set_receiver(lambda data, src: at_a.append(data))
            b.set_receiver(lambda data, src: at_b.append(data))
            injector = ChaosInjector(hub)
            injector.block_link("a", "b")
            await a.send("b", b"blocked")
            await b.send("a", b"fine")
            await asyncio.sleep(0.02)
            return at_a, at_b

        at_a, at_b = drive(body())
        assert at_a == [b"fine"]
        assert at_b == []

    def test_reliable_hub_holds_and_replays_in_order(self, drive):
        """On a CR hub, a partition must not lose data: the injector
        holds the bytes and replays them FIFO on heal — the reliable
        network keeps its delivery contract across scripted outages."""

        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            got = []
            b.set_receiver(lambda data, src: got.append(data))
            injector = ChaosInjector(hub)
            injector.isolate("b")
            for i in range(5):
                await a.send("b", bytes([i]))
            await asyncio.sleep(0.02)
            held_mid_outage = injector.held_count
            injector.heal_node("b")
            await asyncio.sleep(0.02)
            return got, held_mid_outage, injector.replayed

        got, held, replayed = drive(body())
        assert held == 5
        assert replayed == 5
        assert got == [bytes([i]) for i in range(5)]

    def test_bursts_are_noops_on_reliable_hub(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            got = []
            b.set_receiver(lambda data, src: got.append(data))
            injector = ChaosInjector(hub)
            injector.set_burst(drop=1.0, corrupt=1.0)
            for i in range(10):
                await a.send("b", bytes([i]))
            await asyncio.sleep(0.02)
            return got

        assert drive(body()) == [bytes([i]) for i in range(10)]

    def test_burst_drop_suppresses_on_cm5(self, drive):
        async def body():
            hub = LoopbackHub.cm5(reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            got = []
            b.set_receiver(lambda data, src: got.append(data))
            injector = ChaosInjector(hub)
            injector.set_burst(drop=1.0)
            await a.send("b", b"gone")
            injector.set_burst()  # clear
            await a.send("b", b"kept")
            await asyncio.sleep(0.02)
            return got, hub.dropped

        got, dropped = drive(body())
        assert got == [b"kept"]
        assert dropped == 1

    def test_burst_rates_validated(self):
        injector = ChaosInjector(LoopbackHub.cm5())
        with pytest.raises(ValueError):
            injector.set_burst(drop=1.5)
        with pytest.raises(ValueError):
            injector.spike_latency(-0.1)


class TestFaultAnnotations:
    def _injector_with_log(self):
        hub = LoopbackHub.cm5(reorder_rate=0.0)
        hub.attach("a"), hub.attach("b"), hub.attach("c")
        injector = ChaosInjector(hub)
        notes = []
        injector.on_event = notes.append
        return injector, notes

    def test_fault_schedule_changes_are_narrated(self):
        injector, notes = self._injector_with_log()
        injector.block_link("a", "b")
        injector.partition_link("a", "b")
        injector.heal_link("a", "b")
        injector.heal_all()
        assert notes == [
            "block a->b",
            "partition a<->b",
            "heal a->b",
            "heal all",
        ]

    def test_group_partition_and_isolation_name_the_nodes(self):
        injector, notes = self._injector_with_log()
        injector.partition_groups(["a"], ["b", "c"])
        injector.isolate("c")
        injector.heal_node("c")
        assert notes[0] == "partition groups a | b/c"
        assert notes[1] == "isolate c"
        assert notes[2] == "heal c"

    def test_without_observer_faults_are_silent(self):
        hub = LoopbackHub.cm5(reorder_rate=0.0)
        hub.attach("a"), hub.attach("b")
        injector = ChaosInjector(hub)
        injector.partition_link("a", "b")  # must not raise
        injector.heal_all()

    def test_recorder_receives_marks_directly(self):
        from repro.runtime.telemetry import FlightRecorder

        injector, _ = self._injector_with_log()
        recorder = FlightRecorder()
        injector.on_event = recorder.annotate
        injector.partition_link("a", "b")
        injector.heal_all()
        labels = [label for _ts, label in recorder.marks]
        assert labels == ["partition a<->b", "heal all"]


class TestChaosPairs:
    def test_victim_never_sources_but_always_sinks(self):
        names = [f"p{i}" for i in range(5)]
        pairs = chaos_pairs(names, 6, victim="p4")
        assert all(src != "p4" for src, _dst in pairs)
        assert any(dst == "p4" for _src, dst in pairs)
        assert all(src != dst for src, dst in pairs)

    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            chaos_pairs(["only"], 2)


class TestFailureDetector:
    def test_crashed_peer_detected_within_bound(self, drive):
        """The detection-latency contract the regression gate enforces:
        a crashed peer is declared DEAD within 2x the dead_after
        timeout."""

        async def body():
            fabric = Fabric(mode="cr", transport="loopback")
            for name in ("a", "b", "c"):
                await fabric.add_peer(name)
            hb = HeartbeatConfig(interval=0.02, suspect_after=0.06,
                                 dead_after=0.15)
            detector = FailureDetector(fabric, hb)
            detector.start()
            try:
                await asyncio.sleep(3 * hb.interval)  # beats flowing
                crash_at = asyncio.get_running_loop().time()
                await fabric.crash_peer("c")
                while "c" not in detector.dead_at:
                    if (asyncio.get_running_loop().time() - crash_at
                            > 2 * hb.dead_after):
                        raise AssertionError("detector missed the crash")
                    await asyncio.sleep(hb.interval / 2)
                latency = detector.dead_at["c"] - crash_at
                return latency, detector.state("a", "c"), hb
            finally:
                await detector.stop()
                await fabric.close()

        latency, state, hb = drive(body())
        assert state is PeerState.DEAD
        assert latency <= 2 * hb.dead_after

    def test_healthy_peers_stay_alive(self, drive):
        async def body():
            fabric = Fabric(mode="cr", transport="loopback")
            for name in ("a", "b"):
                await fabric.add_peer(name)
            hb = HeartbeatConfig(interval=0.02, suspect_after=0.06,
                                 dead_after=0.15)
            detector = FailureDetector(fabric, hb)
            detector.start()
            try:
                await asyncio.sleep(2.5 * hb.dead_after)
                return (detector.state("a", "b"), detector.state("b", "a"),
                        detector.dead_peers())
            finally:
                await detector.stop()
                await fabric.close()

        ab, ba, dead = drive(body())
        assert ab is PeerState.ALIVE
        assert ba is PeerState.ALIVE
        assert dead == []

    def test_restarted_peer_recovers_to_alive(self, drive):
        async def body():
            fabric = Fabric(mode="cr", transport="loopback")
            for name in ("a", "b", "c"):
                await fabric.add_peer(name)
            hb = HeartbeatConfig(interval=0.02, suspect_after=0.06,
                                 dead_after=0.15)
            detector = FailureDetector(fabric, hb)
            detector.start()
            try:
                await asyncio.sleep(3 * hb.interval)
                await fabric.crash_peer("c")
                await asyncio.sleep(1.5 * hb.dead_after)
                dead_state = detector.state("a", "c")
                await fabric.restart_peer("c")
                await asyncio.sleep(4 * hb.interval)
                return dead_state, detector.state("a", "c")
            finally:
                await detector.stop()
                await fabric.close()

        dead_state, alive_state = drive(body())
        assert dead_state is PeerState.DEAD
        assert alive_state is PeerState.ALIVE

    def test_cadence_validated(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(interval=0.1, suspect_after=0.05, dead_after=0.2)


class TestScenarios:
    """Every scripted scenario, both modes, must end with a clean audit."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("mode", ["cm5", "cr"])
    def test_scenario_audit_is_clean(self, drive, scenario, mode):
        result = drive(run_chaos(small_config(mode), scenario),
                       timeout=SOAK_TIMEOUT)
        assert result.errors == []
        report = result.audit
        assert report.clean, report.to_dict()
        assert report.duplicates == 0
        assert report.misordered == 0
        assert report.checksum_failures == 0
        assert report.missing == 0  # loss is only legal on broken lanes
        if SCENARIOS[scenario].expects_detection:
            assert result.detection_latency is not None
            assert result.detection_within_bound

    def test_crash_restart_resumes_without_duplicates(self, drive):
        """The tentpole recovery path: crash mid-traffic, restart under
        the same address, and the epoch renegotiation resumes from the
        receiver's durable delivery point — everything delivered exactly
        once, nothing broken."""
        config = ChaosConfig(mode="cm5", peers=4, lanes=4, messages=40,
                             send_interval=0.01)
        result = drive(run_chaos(config, "crash-restart"),
                       timeout=SOAK_TIMEOUT)
        assert result.errors == []
        assert result.broken_lanes == []
        report = result.audit
        assert report.clean, report.to_dict()
        assert report.delivered == report.offered
        assert report.duplicates == 0
        # The crash interrupted live traffic, so the sender facing the
        # restarted peer must actually have renegotiated an epoch.
        assert result.recoveries >= 1

    def test_permanent_crash_breaks_typed_not_silent(self, drive):
        """A permanently dead peer must surface as ChannelBroken on the
        lanes into it — and the audit books their missing messages under
        the broken-lane contract, not as violations."""
        config = ChaosConfig(mode="cm5", peers=4, lanes=4, messages=40,
                             send_interval=0.01)
        result = drive(run_chaos(config, "crash-permanent"),
                       timeout=SOAK_TIMEOUT)
        assert result.broken_lanes, "expected at least one broken lane"
        for _cid, reason in result.broken_lanes:
            assert reason  # a typed, human-readable failure
        report = result.audit
        assert report.clean, report.to_dict()
        assert report.missing == 0
        assert report.missing_on_broken > 0
        assert result.detection_within_bound

    def test_unknown_scenario_rejected(self, drive):
        with pytest.raises(ValueError):
            drive(run_chaos(small_config("cm5"), "no-such-scenario"))

    def test_fault_tolerance_share_is_nonzero_under_chaos(self, drive):
        """Even in CR mode — where the *transport* is lossless — the
        failure detector and recovery machinery cost real time; chaos
        runs must show it in the timeshare (which is why the Figure 6
        collapse gate does not apply to chaos rows)."""
        result = drive(run_chaos(small_config("cr"), "partition-heal"),
                       timeout=SOAK_TIMEOUT)
        assert result.audit.clean
        assert result.fault_tolerance_share > 0.0

    def test_config_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(peers=1)
        with pytest.raises(ValueError):
            ChaosConfig(message_words=2)
