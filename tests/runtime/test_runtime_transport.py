"""Tests for the loopback (fault-injecting / CR) and UDP transports."""

import asyncio

import pytest

from repro.runtime.transport import (
    FaultProfile,
    LoopbackHub,
    UDPTransport,
)


def collect(transport):
    """Attach a recording receiver; returns the record list."""
    received = []
    transport.set_receiver(lambda data, src: received.append((data, src)))
    return received


async def settle(seconds: float = 0.02) -> None:
    """Let scheduled deliveries (including reorder delays) run."""
    await asyncio.sleep(seconds)


class TestLoopbackClean:
    def test_delivers_datagrams_with_source_address(self, drive):
        async def body():
            hub = LoopbackHub()
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"hello")
            await settle()
            return received

        assert drive(body()) == [(b"hello", "a")]

    def test_unknown_destination_is_blackholed(self, drive):
        async def body():
            hub = LoopbackHub()
            a = hub.attach("a")
            await a.send("nowhere", b"x")
            await settle()
            return hub.blackholed, hub.dropped

        # A blackhole is not a fault: `dropped` must stay clean so the
        # demo/bench fault statistics only reflect injected losses.
        assert drive(body()) == (1, 0)

    def test_duplicate_address_rejected(self):
        hub = LoopbackHub()
        hub.attach("a")
        with pytest.raises(ValueError):
            hub.attach("a")

    def test_detach_on_close(self, drive):
        async def body():
            hub = LoopbackHub()
            a, b = hub.attach("a"), hub.attach("b")
            await b.close()
            await a.send("b", b"x")
            await settle()
            return hub.blackholed, hub.dropped

        assert drive(body()) == (1, 0)


class TestFaultInjection:
    def test_drops_are_seeded_and_counted(self, drive):
        async def body(seed):
            hub = LoopbackHub.cm5(drop_rate=0.3, reorder_rate=0.0, seed=seed)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            for i in range(100):
                await a.send("b", bytes([i]))
            await settle()
            return len(received), hub.dropped

        first = drive(body(7))
        again = drive(body(7))
        assert first == again  # same seed, same fate
        delivered, dropped = first
        assert delivered + dropped == 100
        assert 0 < dropped < 100

    def test_duplication(self, drive):
        async def body():
            hub = LoopbackHub.cm5(dup_rate=1.0, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"x")
            await settle()
            return len(received), hub.duplicated

        assert drive(body()) == (2, 1)

    def test_reordering_overtakes(self, drive):
        async def body():
            # First datagram always reordered (held 5 ms), rest never.
            hub = LoopbackHub.cm5(reorder_rate=1.0, reorder_delay=0.005)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"first")
            hub.faults.reorder_rate = 0.0
            await a.send("b", b"second")
            await settle(0.05)
            return [data for data, _src in received]

        assert drive(body()) == [b"second", b"first"]

    def test_fault_rates_validated(self):
        with pytest.raises(ValueError):
            FaultProfile(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(corrupt_rate=-0.1)

    def test_corruption_damages_but_still_delivers(self, drive):
        """corrupt_rate flips a bit and delivers: the hub models wire
        damage, the endpoint's frame checksum is what must catch it."""

        async def body():
            hub = LoopbackHub.cm5(corrupt_rate=1.0, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"pristine")
            await settle()
            return received, hub.corrupted

        received, corrupted = drive(body())
        assert corrupted == 1
        assert len(received) == 1
        data, _src = received[0]
        assert data != b"pristine"
        assert len(data) == len(b"pristine")  # one bit, not truncation

    def test_reorder_delay_must_exceed_latency(self):
        """Regression: a profile whose reorder_delay is <= its base
        latency silently never reorders anything — the 'held' datagram
        arrives with (or before) its successors."""
        with pytest.raises(ValueError):
            FaultProfile(reorder_rate=0.5, latency=0.01, reorder_delay=0.005)
        with pytest.raises(ValueError):
            FaultProfile(reorder_rate=0.5, latency=0.002, reorder_delay=0.002)
        # Without reordering enabled the pair is unconstrained...
        FaultProfile(reorder_rate=0.0, latency=0.01, reorder_delay=0.005)
        # ...and negative times are never valid.
        with pytest.raises(ValueError):
            FaultProfile(latency=-0.001)

    def test_delivery_to_peer_detached_mid_flight_expires(self, drive):
        """Regression: datagrams already scheduled with ``call_later``
        were delivered to transports that had detached in the meantime —
        traffic materialising on closed endpoints."""

        async def body():
            hub = LoopbackHub.cm5(latency=0.01, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"late")   # in flight for 10 ms
            await b.close()              # detach before it lands
            await settle(0.05)
            return received, hub.delivered, hub.expired

        received, delivered, expired = drive(body())
        assert received == []
        assert delivered == 0
        assert expired == 1

    def test_reattached_address_does_not_get_stale_datagrams(self, drive):
        """A new transport on a reused address must not receive
        datagrams addressed to its predecessor."""

        async def body():
            hub = LoopbackHub.cm5(latency=0.01, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            await a.send("b", b"for the old b")
            await b.close()
            b2 = hub.attach("b")         # same address, new transport
            received = collect(b2)
            await settle(0.05)
            return received, hub.expired

        received, expired = drive(body())
        assert received == []
        assert expired == 1


class TestCRMode:
    def test_cr_hub_advertises_services(self):
        hub = LoopbackHub.cr()
        transport = hub.attach("a")
        assert transport.provides_in_order
        assert transport.provides_reliability
        assert hub.mode == "cr"

    def test_cm5_hub_advertises_nothing(self):
        transport = LoopbackHub.cm5().attach("a")
        assert not transport.provides_in_order
        assert not transport.provides_reliability

    def test_cr_mode_is_lossless_fifo(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            for i in range(50):
                await a.send("b", bytes([i]))
            await settle()
            return [data[0] for data, _src in received], hub.dropped

        order, dropped = drive(body())
        assert order == list(range(50))
        assert dropped == 0

    def test_cr_fault_stats_stay_clean_even_after_detach(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            await b.close()
            await a.send("b", b"x")  # blackholed, not a fault
            await settle()
            return hub.wire_counters()

        assert drive(body()) == {
            "delivered": 0, "dropped": 0, "duplicated": 0,
            "reordered": 0, "corrupted": 0, "partitioned": 0,
            "blackholed": 1, "expired": 0,
        }

    def test_wire_counters_matches_the_attribute_properties(self, drive):
        """wire_counters() is the one-stop dict; the legacy attribute
        names must read the same registry."""
        async def body():
            hub = LoopbackHub.cm5(drop_rate=0.3, reorder_rate=0.0, seed=3)
            a, b = hub.attach("a"), hub.attach("b")
            collect(b)
            for i in range(60):
                await a.send("b", bytes([i]))
            await settle()
            return hub.wire_counters(), (
                hub.delivered, hub.dropped, hub.duplicated,
                hub.reordered, hub.blackholed,
            )

        counters, attrs = drive(body())
        assert attrs == (
            counters["delivered"], counters["dropped"],
            counters["duplicated"], counters["reordered"],
            counters["blackholed"],
        )
        assert counters["delivered"] + counters["dropped"] == 60
        assert counters["dropped"] > 0

    def test_cr_hub_refuses_fault_injection(self):
        with pytest.raises(ValueError):
            LoopbackHub(FaultProfile(drop_rate=0.1), ordered=True, reliable=True)


class TestInjectReplay:
    def test_inject_bypasses_fault_policy(self, drive):
        """hub.inject() is the chaos replay path: held bytes re-enter
        delivery even when the static profile would drop everything."""

        async def body():
            hub = LoopbackHub.cm5(drop_rate=1.0, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"eaten")       # static profile drops it
            assert hub.inject("b", b"replayed", "a")
            await settle()
            return received, hub.dropped

        received, dropped = drive(body())
        assert received == [(b"replayed", "a")]
        assert dropped == 1

    def test_inject_to_missing_destination_expires(self, drive):
        async def body():
            hub = LoopbackHub.cm5()
            hub.attach("a")
            ok = hub.inject("gone", b"late", "a")
            return ok, hub.expired

        ok, expired = drive(body())
        assert not ok
        assert expired == 1


async def bind_or_skip(host: str = "127.0.0.1", port: int = 0):
    """Bind a UDP socket, or skip when the environment forbids it."""
    try:
        return await UDPTransport.bind(host, port)
    except (OSError, PermissionError) as exc:
        pytest.skip(f"UDP sockets unavailable: {exc}")


class TestUDPLifecycle:
    """Satellite: UDP socket lifecycle — close, detach, crash-restart."""

    def test_send_after_close_raises(self, drive):
        async def body():
            transport = await bind_or_skip()
            dst = transport.local_address
            await transport.close()
            with pytest.raises(RuntimeError):
                await transport.send(dst, b"too late")
            with pytest.raises(RuntimeError):
                transport.local_address
            return True

        assert drive(body())

    def test_close_is_idempotent(self, drive):
        async def body():
            transport = await bind_or_skip()
            await transport.close()
            await transport.close()
            return True

        assert drive(body())

    def test_receiver_detach_mid_traffic_discards_quietly(self, drive):
        """Detaching the receiver callback mid-traffic must not raise on
        late arrivals — they are counted received and discarded."""

        async def body():
            a = await bind_or_skip()
            b = await bind_or_skip()
            received = collect(b)
            await a.send(b.local_address, b"one")
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            b.set_receiver(None)  # detach while the peer keeps sending
            await a.send(b.local_address, b"two")
            await asyncio.sleep(0.05)
            counts = (len(received), b.datagrams_received)
            await a.close()
            await b.close()
            return counts

        callbacks, arrived = drive(body())
        assert callbacks == 1
        assert arrived >= 1  # "two" may race close; "one" is guaranteed

    def test_crash_restart_on_same_port_smoke(self, drive):
        """A 'process restart': close the socket, rebind the same port,
        and traffic flows to the new incarnation."""

        async def body():
            a = await bind_or_skip()
            b = await bind_or_skip()
            host, port = b.local_address
            await b.close()          # crash
            try:
                b2 = await UDPTransport.bind(host, port)  # restart
            except OSError:
                pytest.skip("cannot rebind the port (environment policy)")
            received = collect(b2)
            for _ in range(100):
                await a.send((host, port), b"hello again")
                if received:
                    break
                await asyncio.sleep(0.01)
            await a.close()
            await b2.close()
            return received

        received = drive(body())
        assert received
        assert received[0][0] == b"hello again"


class TestUDP:
    def test_udp_round_trip(self, drive):
        async def body():
            a = await UDPTransport.bind()
            b = await UDPTransport.bind()
            received = collect(b)
            await a.send(b.local_address, b"over the wire")
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            await a.close()
            await b.close()
            return received

        received = drive(body())
        assert len(received) == 1
        assert received[0][0] == b"over the wire"

    def test_udp_advertises_no_services(self, drive):
        async def body():
            transport = await UDPTransport.bind()
            flags = (transport.provides_in_order, transport.provides_reliability)
            await transport.close()
            return flags

        assert drive(body()) == (False, False)
