"""Tests for the loopback (fault-injecting / CR) and UDP transports."""

import asyncio

import pytest

from repro.runtime.transport import (
    FaultProfile,
    LoopbackHub,
    UDPTransport,
)


def collect(transport):
    """Attach a recording receiver; returns the record list."""
    received = []
    transport.set_receiver(lambda data, src: received.append((data, src)))
    return received


async def settle(seconds: float = 0.02) -> None:
    """Let scheduled deliveries (including reorder delays) run."""
    await asyncio.sleep(seconds)


class TestLoopbackClean:
    def test_delivers_datagrams_with_source_address(self, drive):
        async def body():
            hub = LoopbackHub()
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"hello")
            await settle()
            return received

        assert drive(body()) == [(b"hello", "a")]

    def test_unknown_destination_is_blackholed(self, drive):
        async def body():
            hub = LoopbackHub()
            a = hub.attach("a")
            await a.send("nowhere", b"x")
            await settle()
            return hub.blackholed, hub.dropped

        # A blackhole is not a fault: `dropped` must stay clean so the
        # demo/bench fault statistics only reflect injected losses.
        assert drive(body()) == (1, 0)

    def test_duplicate_address_rejected(self):
        hub = LoopbackHub()
        hub.attach("a")
        with pytest.raises(ValueError):
            hub.attach("a")

    def test_detach_on_close(self, drive):
        async def body():
            hub = LoopbackHub()
            a, b = hub.attach("a"), hub.attach("b")
            await b.close()
            await a.send("b", b"x")
            await settle()
            return hub.blackholed, hub.dropped

        assert drive(body()) == (1, 0)


class TestFaultInjection:
    def test_drops_are_seeded_and_counted(self, drive):
        async def body(seed):
            hub = LoopbackHub.cm5(drop_rate=0.3, reorder_rate=0.0, seed=seed)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            for i in range(100):
                await a.send("b", bytes([i]))
            await settle()
            return len(received), hub.dropped

        first = drive(body(7))
        again = drive(body(7))
        assert first == again  # same seed, same fate
        delivered, dropped = first
        assert delivered + dropped == 100
        assert 0 < dropped < 100

    def test_duplication(self, drive):
        async def body():
            hub = LoopbackHub.cm5(dup_rate=1.0, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"x")
            await settle()
            return len(received), hub.duplicated

        assert drive(body()) == (2, 1)

    def test_reordering_overtakes(self, drive):
        async def body():
            # First datagram always reordered (held 5 ms), rest never.
            hub = LoopbackHub.cm5(reorder_rate=1.0, reorder_delay=0.005)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"first")
            hub.faults.reorder_rate = 0.0
            await a.send("b", b"second")
            await settle(0.05)
            return [data for data, _src in received]

        assert drive(body()) == [b"second", b"first"]

    def test_fault_rates_validated(self):
        with pytest.raises(ValueError):
            FaultProfile(drop_rate=1.5)

    def test_reorder_delay_must_exceed_latency(self):
        """Regression: a profile whose reorder_delay is <= its base
        latency silently never reorders anything — the 'held' datagram
        arrives with (or before) its successors."""
        with pytest.raises(ValueError):
            FaultProfile(reorder_rate=0.5, latency=0.01, reorder_delay=0.005)
        with pytest.raises(ValueError):
            FaultProfile(reorder_rate=0.5, latency=0.002, reorder_delay=0.002)
        # Without reordering enabled the pair is unconstrained...
        FaultProfile(reorder_rate=0.0, latency=0.01, reorder_delay=0.005)
        # ...and negative times are never valid.
        with pytest.raises(ValueError):
            FaultProfile(latency=-0.001)

    def test_delivery_to_peer_detached_mid_flight_expires(self, drive):
        """Regression: datagrams already scheduled with ``call_later``
        were delivered to transports that had detached in the meantime —
        traffic materialising on closed endpoints."""

        async def body():
            hub = LoopbackHub.cm5(latency=0.01, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            await a.send("b", b"late")   # in flight for 10 ms
            await b.close()              # detach before it lands
            await settle(0.05)
            return received, hub.delivered, hub.expired

        received, delivered, expired = drive(body())
        assert received == []
        assert delivered == 0
        assert expired == 1

    def test_reattached_address_does_not_get_stale_datagrams(self, drive):
        """A new transport on a reused address must not receive
        datagrams addressed to its predecessor."""

        async def body():
            hub = LoopbackHub.cm5(latency=0.01, reorder_rate=0.0)
            a, b = hub.attach("a"), hub.attach("b")
            await a.send("b", b"for the old b")
            await b.close()
            b2 = hub.attach("b")         # same address, new transport
            received = collect(b2)
            await settle(0.05)
            return received, hub.expired

        received, expired = drive(body())
        assert received == []
        assert expired == 1


class TestCRMode:
    def test_cr_hub_advertises_services(self):
        hub = LoopbackHub.cr()
        transport = hub.attach("a")
        assert transport.provides_in_order
        assert transport.provides_reliability
        assert hub.mode == "cr"

    def test_cm5_hub_advertises_nothing(self):
        transport = LoopbackHub.cm5().attach("a")
        assert not transport.provides_in_order
        assert not transport.provides_reliability

    def test_cr_mode_is_lossless_fifo(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            received = collect(b)
            for i in range(50):
                await a.send("b", bytes([i]))
            await settle()
            return [data[0] for data, _src in received], hub.dropped

        order, dropped = drive(body())
        assert order == list(range(50))
        assert dropped == 0

    def test_cr_fault_stats_stay_clean_even_after_detach(self, drive):
        async def body():
            hub = LoopbackHub.cr()
            a, b = hub.attach("a"), hub.attach("b")
            await b.close()
            await a.send("b", b"x")  # blackholed, not a fault
            await settle()
            return hub.wire_counters()

        assert drive(body()) == {
            "delivered": 0, "dropped": 0, "duplicated": 0,
            "reordered": 0, "blackholed": 1, "expired": 0,
        }

    def test_wire_counters_matches_the_attribute_properties(self, drive):
        """wire_counters() is the one-stop dict; the legacy attribute
        names must read the same registry."""
        async def body():
            hub = LoopbackHub.cm5(drop_rate=0.3, reorder_rate=0.0, seed=3)
            a, b = hub.attach("a"), hub.attach("b")
            collect(b)
            for i in range(60):
                await a.send("b", bytes([i]))
            await settle()
            return hub.wire_counters(), (
                hub.delivered, hub.dropped, hub.duplicated,
                hub.reordered, hub.blackholed,
            )

        counters, attrs = drive(body())
        assert attrs == (
            counters["delivered"], counters["dropped"],
            counters["duplicated"], counters["reordered"],
            counters["blackholed"],
        )
        assert counters["delivered"] + counters["dropped"] == 60
        assert counters["dropped"] > 0

    def test_cr_hub_refuses_fault_injection(self):
        with pytest.raises(ValueError):
            LoopbackHub(FaultProfile(drop_rate=0.1), ordered=True, reliable=True)


class TestUDP:
    def test_udp_round_trip(self, drive):
        async def body():
            a = await UDPTransport.bind()
            b = await UDPTransport.bind()
            received = collect(b)
            await a.send(b.local_address, b"over the wire")
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            await a.close()
            await b.close()
            return received

        received = drive(body())
        assert len(received) == 1
        assert received[0][0] == b"over the wire"

    def test_udp_advertises_no_services(self, drive):
        async def body():
            transport = await UDPTransport.bind()
            flags = (transport.provides_in_order, transport.provides_reliability)
            await transport.close()
            return flags

        assert drive(body()) == (False, False)
