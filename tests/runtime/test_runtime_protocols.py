"""End-to-end tests for the live protocol ports.

Each protocol runs over (a) a clean loopback, (b) a loopback injecting
drops/reordering/duplication — exercising the retransmit path — and
(c) a CR-mode loopback, where the overhead machinery must disappear
from the measured attribution.
"""

import pytest

from repro.arch.attribution import Feature
from repro.runtime import (
    BackoffPolicy,
    ProtocolFailure,
    make_loopback_pair,
    run_bulk_live,
    run_ordered_live,
    run_single_packet_live,
)
from repro.runtime.protocols import SinglePacketReceiver, SinglePacketSender

#: Fast backoff for fault tests: recover in milliseconds.
FAST = BackoffPolicy(initial=0.01, factor=1.5, ceiling=0.1, max_retries=12)

RUNNERS = {
    "single": run_single_packet_live,
    "finite": run_bulk_live,
    "indefinite": run_ordered_live,
}


def run_protocol(drive, protocol, mode="cm5", message_words=256, **pair_kwargs):
    async def body():
        pair = make_loopback_pair(mode=mode, **pair_kwargs)
        try:
            return await RUNNERS[protocol](
                pair, message_words=message_words, deadline=15.0, backoff=FAST
            )
        finally:
            await pair.close()

    return drive(body())


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
class TestCleanPath:
    def test_completes_in_order(self, drive, protocol):
        result = run_protocol(drive, protocol, reorder_rate=0.0)
        assert result.completed
        assert result.delivered_words == list(range(1, 257))
        assert result.retransmissions == 0

    def test_reordering_alone_is_recovered_without_retransmission(
            self, drive, protocol):
        # Reorder delay (2 ms) is far below the first timeout (10 ms), so
        # ordering machinery — not fault tolerance — does the recovery.
        result = run_protocol(drive, protocol, reorder_rate=0.3)
        assert result.completed
        assert result.delivered_words == list(range(1, 257))

    def test_attribution_buckets_populated(self, drive, protocol):
        result = run_protocol(drive, protocol, reorder_rate=0.25)
        breakdown = result.breakdown()
        assert breakdown.row(Feature.BASE).total_ns > 0
        assert breakdown.row(Feature.FAULT_TOLERANCE).total_ns > 0
        assert result.total_ns == breakdown.total_ns


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
class TestFaultRecovery:
    def test_survives_drops(self, drive, protocol):
        result = run_protocol(
            drive, protocol, drop_rate=0.1, reorder_rate=0.25, seed=11,
        )
        assert result.completed
        assert result.delivered_words == list(range(1, 257))
        assert result.drops_injected > 0
        assert result.retransmissions > 0

    def test_absorbs_duplicates(self, drive, protocol):
        result = run_protocol(
            drive, protocol, dup_rate=0.2, reorder_rate=0.0, seed=3,
        )
        assert result.completed
        assert result.delivered_words == list(range(1, 257))


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
class TestCRMode:
    def test_completes_with_zero_overhead_time(self, drive, protocol):
        result = run_protocol(drive, protocol, mode="cr")
        assert result.completed
        assert result.delivered_words == list(range(1, 257))
        breakdown = result.breakdown()
        # The network provides ordering and reliability, so the runtime
        # never enters the in-order or fault-tolerance machinery at all —
        # the Figure 6 collapse, measured rather than modeled.
        assert breakdown.row(Feature.IN_ORDER).total_ns == 0
        assert breakdown.row(Feature.FAULT_TOLERANCE).total_ns == 0
        assert breakdown.row(Feature.BASE).total_ns > 0
        assert result.retransmissions == 0

    def test_collapse_direction_vs_cm5(self, drive, protocol):
        faulty = run_protocol(
            drive, protocol, drop_rate=0.05, reorder_rate=0.25,
        )
        clean = run_protocol(drive, protocol, mode="cr")
        cm5_share = faulty.breakdown().ordering_plus_fault_share()
        cr_share = clean.breakdown().ordering_plus_fault_share()
        assert cm5_share > 0.05
        assert cr_share == 0.0


class TestGiveUp:
    def test_unreachable_destination_fails_fast(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", drop_rate=1.0, reorder_rate=0.0)
            sender = SinglePacketSender(
                pair.src, pair.dst.local_address,
                backoff=BackoffPolicy(initial=0.005, max_retries=3),
            )
            SinglePacketReceiver(pair.dst)
            try:
                with pytest.raises(ProtocolFailure):
                    await sender.send([1, 2, 3], timeout=5.0)
                return sender.retransmitter.exhausted
            finally:
                sender.close()
                await pair.close()

        assert drive(body()) == 1
