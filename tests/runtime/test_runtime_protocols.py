"""End-to-end tests for the live protocol ports.

Each protocol runs over (a) a clean loopback, (b) a loopback injecting
drops/reordering/duplication — exercising the retransmit path — and
(c) a CR-mode loopback, where the overhead machinery must disappear
from the measured attribution.
"""

import asyncio

import pytest

from repro.arch.attribution import Feature
from repro.runtime import (
    BackoffPolicy,
    Frame,
    FrameKind,
    ChannelBroken,
    ProtocolFailure,
    make_loopback_pair,
    run_bulk_live,
    run_ordered_live,
    run_single_packet_live,
)
from repro.runtime.protocols import (
    BulkReceiver,
    BulkSender,
    OrderedChannelReceiver,
    OrderedChannelSender,
    SinglePacketReceiver,
    SinglePacketSender,
)

#: Fast backoff for fault tests: recover in milliseconds.
FAST = BackoffPolicy(initial=0.01, factor=1.5, ceiling=0.1, max_retries=12)

RUNNERS = {
    "single": run_single_packet_live,
    "finite": run_bulk_live,
    "indefinite": run_ordered_live,
}


def run_protocol(drive, protocol, mode="cm5", message_words=256, **pair_kwargs):
    async def body():
        pair = make_loopback_pair(mode=mode, **pair_kwargs)
        try:
            return await RUNNERS[protocol](
                pair, message_words=message_words, deadline=15.0, backoff=FAST
            )
        finally:
            await pair.close()

    return drive(body())


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
class TestCleanPath:
    def test_completes_in_order(self, drive, protocol):
        result = run_protocol(drive, protocol, reorder_rate=0.0)
        assert result.completed
        assert result.delivered_words == list(range(1, 257))
        assert result.retransmissions == 0

    def test_reordering_alone_is_recovered_without_retransmission(
            self, drive, protocol):
        # Reorder delay (2 ms) is far below the first timeout (10 ms), so
        # ordering machinery — not fault tolerance — does the recovery.
        result = run_protocol(drive, protocol, reorder_rate=0.3)
        assert result.completed
        assert result.delivered_words == list(range(1, 257))

    def test_attribution_buckets_populated(self, drive, protocol):
        result = run_protocol(drive, protocol, reorder_rate=0.25)
        breakdown = result.breakdown()
        assert breakdown.row(Feature.BASE).total_ns > 0
        assert breakdown.row(Feature.FAULT_TOLERANCE).total_ns > 0
        assert result.total_ns == breakdown.total_ns


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
class TestFaultRecovery:
    def test_survives_drops(self, drive, protocol):
        # 1024 words: coalescing packs ~14 small frames per container
        # datagram, so a bigger message keeps the seeded fault pattern
        # actually injecting drops at datagram granularity.
        result = run_protocol(
            drive, protocol, message_words=1024,
            drop_rate=0.15, reorder_rate=0.25, seed=11,
        )
        assert result.completed
        assert result.delivered_words == list(range(1, 1025))
        assert result.drops_injected > 0
        assert result.retransmissions > 0

    def test_absorbs_duplicates(self, drive, protocol):
        result = run_protocol(
            drive, protocol, dup_rate=0.2, reorder_rate=0.0, seed=3,
        )
        assert result.completed
        assert result.delivered_words == list(range(1, 257))


@pytest.mark.parametrize("protocol", sorted(RUNNERS))
class TestCRMode:
    def test_completes_with_zero_overhead_time(self, drive, protocol):
        result = run_protocol(drive, protocol, mode="cr")
        assert result.completed
        assert result.delivered_words == list(range(1, 257))
        breakdown = result.breakdown()
        # The network provides ordering and reliability, so the runtime
        # never enters the in-order or fault-tolerance machinery at all —
        # the Figure 6 collapse, measured rather than modeled.
        assert breakdown.row(Feature.IN_ORDER).total_ns == 0
        assert breakdown.row(Feature.FAULT_TOLERANCE).total_ns == 0
        assert breakdown.row(Feature.BASE).total_ns > 0
        assert result.retransmissions == 0

    def test_collapse_direction_vs_cm5(self, drive, protocol):
        faulty = run_protocol(
            drive, protocol, drop_rate=0.05, reorder_rate=0.25,
        )
        clean = run_protocol(drive, protocol, mode="cr")
        cm5_share = faulty.breakdown().ordering_plus_fault_share()
        cr_share = clean.breakdown().ordering_plus_fault_share()
        assert cm5_share > 0.05
        assert cr_share == 0.0

    def test_cr_run_leaves_fault_stats_clean(self, drive, protocol):
        """A CR run must inject nothing: dropped/duplicated/reordered/
        blackholed all stay zero on the hub."""

        async def body():
            pair = make_loopback_pair(mode="cr")
            try:
                result = await RUNNERS[protocol](
                    pair, message_words=128, deadline=15.0, backoff=FAST
                )
                return result.completed, pair.hub.wire_counters()
            finally:
                await pair.close()

        completed, stats = drive(body())
        assert completed
        assert stats["delivered"] > 0
        assert (stats["dropped"], stats["duplicated"], stats["reordered"],
                stats["blackholed"]) == (0, 0, 0, 0)


class TestGiveUp:
    def test_unreachable_destination_fails_fast(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", drop_rate=1.0, reorder_rate=0.0)
            sender = SinglePacketSender(
                pair.src, pair.dst.local_address,
                backoff=BackoffPolicy(initial=0.005, max_retries=3),
            )
            SinglePacketReceiver(pair.dst)
            try:
                with pytest.raises(ProtocolFailure):
                    await sender.send([1, 2, 3], timeout=5.0)
                return sender.retransmitter.exhausted
            finally:
                await sender.close()
                await pair.close()

        assert drive(body()) == 1


class TestSelectiveRepeat:
    """The bulk transfer retransmits only unacked offsets (tentpole)."""

    def test_bulk_under_drops_resends_less_than_goback_n(self, drive):
        # Sized so the seeded pattern drops several *container* datagrams
        # (frame coalescing packs ~14 data packets per datagram).
        result = run_protocol(
            drive, "finite", drop_rate=0.1, reorder_rate=0.25,
            seed=11, message_words=1024,
        )
        assert result.completed
        assert result.delivered_words == list(range(1, 1025))
        assert result.drops_injected > 0
        resent = result.detail["retransmitted_data_bytes"]
        gbn = result.detail["goback_n_equivalent_bytes"]
        # Go-back-N would have resent the whole remainder each round;
        # selective repeat resends only the lost offsets.
        assert 0 < resent < gbn

    def test_duplicate_final_ack_is_counted_and_ignored(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.0)
            sender = BulkSender(pair.src, pair.dst.local_address, backoff=FAST)
            BulkReceiver(pair.dst)
            try:
                outcome = await sender.send(list(range(64)), timeout=5.0)
                # Replay the receiver's completion ack for the finished
                # transfer: must be counted, not crash or re-resolve.
                replay = Frame(FrameKind.FINAL_ACK, sender.channel,
                               seq=outcome.transfer_id, aux=64)
                sender._on_frame(replay, pair.dst.local_address)
                sender._on_frame(replay, pair.dst.local_address)
                return sender.stale_final_acks
            finally:
                await sender.close()
                await pair.close()

        assert drive(body()) == 2

    def test_final_ack_for_unknown_transfer_is_stale(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.0)
            sender = BulkSender(pair.src, pair.dst.local_address, backoff=FAST)
            try:
                bogus = Frame(FrameKind.FINAL_ACK, sender.channel,
                              seq=999, aux=64)
                sender._on_frame(bogus, pair.dst.local_address)
                return sender.stale_final_acks, sender.retransmitter.outstanding
            finally:
                await sender.close()
                await pair.close()

        assert drive(body()) == (1, 0)


class TestAckCoalescing:
    """The ordered channel acks cumulatively, not one-for-one (tentpole)."""

    def test_fewer_acks_than_data_datagrams(self, drive):
        result = run_protocol(drive, "indefinite", reorder_rate=0.0,
                              message_words=512)
        assert result.completed
        assert result.acks_per_data < 0.5

    def test_delayed_ack_timer_confirms_an_idle_channel(self, drive):
        """A burst smaller than ``ack_every`` must still get acked — by
        the delayed-ack timer, once the channel goes idle."""

        async def body():
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.0)
            sender = OrderedChannelSender(
                pair.src, pair.dst.local_address, backoff=FAST
            )
            receiver = OrderedChannelReceiver(
                pair.dst, ack_every=100, ack_delay=0.01
            )
            try:
                for word in range(3):  # 3 < ack_every: no immediate ack
                    await sender.send([word])
                await sender.drain(timeout=5.0)
                return (receiver.delayed_acks, receiver.immediate_acks,
                        sender.outstanding)
            finally:
                receiver.close()
                await sender.close()
                await pair.close()

        delayed, immediate, outstanding = drive(body())
        assert delayed >= 1
        assert immediate == 0
        assert outstanding == 0

    def test_duplicate_arrival_acks_immediately(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", dup_rate=1.0,
                                      reorder_rate=0.0)
            sender = OrderedChannelSender(
                pair.src, pair.dst.local_address, backoff=FAST
            )
            receiver = OrderedChannelReceiver(
                pair.dst, ack_every=100, ack_delay=5.0
            )
            try:
                await sender.send([1])  # delivered twice by the hub
                await sender.drain(timeout=5.0)
                return receiver.immediate_acks, receiver.duplicates
            finally:
                receiver.close()
                await sender.close()
                await pair.close()

        immediate, duplicates = drive(body())
        assert duplicates >= 1
        assert immediate >= 1


class TestConcurrentDrain:
    def test_multiple_drain_waiters_all_resolve(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", reorder_rate=0.0)
            sender = OrderedChannelSender(
                pair.src, pair.dst.local_address, backoff=FAST
            )
            receiver = OrderedChannelReceiver(pair.dst)
            try:
                for word in range(20):
                    await sender.send([word])
                await asyncio.gather(*[
                    sender.drain(timeout=5.0) for _ in range(5)
                ])
                assert sender.outstanding == 0
                assert sender._drain_waiters == []
                return receiver.delivered_count
            finally:
                receiver.close()
                await sender.close()
                await pair.close()

        assert drive(body()) == 20

    def test_drain_waiters_all_fail_on_give_up(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", drop_rate=1.0,
                                      reorder_rate=0.0)
            sender = OrderedChannelSender(
                pair.src, pair.dst.local_address,
                backoff=BackoffPolicy(initial=0.005, max_retries=2),
            )
            OrderedChannelReceiver(pair.dst)
            try:
                await sender.send([1])
                results = await asyncio.gather(
                    *[sender.drain(timeout=5.0) for _ in range(3)],
                    return_exceptions=True,
                )
                return [type(r) for r in results]
            finally:
                await sender.close()
                await pair.close()

        assert drive(body()) == [ChannelBroken] * 3


class TestSenderFailsLoudly:
    """Satellite regression: a sender facing a permanently dead peer
    must surface a *typed* error from every blocked call path — never
    hang until an outer deadline cleans up the pieces."""

    def test_blocked_send_raises_channel_broken(self, drive):
        """A send() parked on a full window must be woken with
        ChannelBroken when the retransmitter gives the peer up for dead.
        Before the fix, _give_up never set the window event, so the
        sender slept forever; the asyncio.wait_for here is the watchdog
        that turns a regression into a fast failure instead of a hung
        suite."""

        async def body():
            pair = make_loopback_pair(mode="cm5", drop_rate=1.0,
                                      reorder_rate=0.0)
            sender = OrderedChannelSender(
                pair.src, pair.dst.local_address, window=2,
                backoff=BackoffPolicy(initial=0.005, max_retries=2),
            )
            OrderedChannelReceiver(pair.dst)
            try:
                # Window is 2: the later sends block on window space
                # that can only be freed by acks that will never come.
                results = await asyncio.wait_for(
                    asyncio.gather(*[sender.send([k]) for k in range(6)],
                                   return_exceptions=True),
                    timeout=5.0,
                )
                blocked = [r for r in results if isinstance(r, Exception)]
                assert blocked, "no send observed the failure"
                assert all(isinstance(r, ChannelBroken) for r in blocked)
                assert sender.broken
                assert isinstance(sender.failure, ChannelBroken)
                return True
            finally:
                await sender.close()
                await pair.close()

        assert drive(body())

    def test_send_after_break_raises_immediately(self, drive):
        async def body():
            pair = make_loopback_pair(mode="cm5", drop_rate=1.0,
                                      reorder_rate=0.0)
            sender = OrderedChannelSender(
                pair.src, pair.dst.local_address,
                backoff=BackoffPolicy(initial=0.005, max_retries=2),
            )
            OrderedChannelReceiver(pair.dst)
            try:
                await sender.send([1])
                with pytest.raises(ChannelBroken):
                    await sender.drain(timeout=5.0)
                with pytest.raises(ChannelBroken):
                    await sender.send([2])
                return True
            finally:
                await sender.close()
                await pair.close()

        assert drive(body())
