"""Unit tests for hop-selection policies."""

import random
from collections import Counter

from repro.network.routing import (
    AdaptiveRouting,
    CongestionAwareRouting,
    DeterministicRouting,
)


def no_load(_vertex):
    return 0


class TestDeterministic:
    def test_always_first(self):
        policy = DeterministicRouting()
        assert policy.choose(["a", "b", "c"], no_load) == "a"
        assert policy.reorders is False


class TestAdaptive:
    def test_single_choice_forced(self):
        policy = AdaptiveRouting(random.Random(0))
        assert policy.choose(["only"], no_load) == "only"

    def test_spreads_over_choices(self):
        policy = AdaptiveRouting(random.Random(0))
        picks = Counter(policy.choose(["a", "b"], no_load) for _ in range(1000))
        assert 400 < picks["a"] < 600
        assert policy.reorders is True

    def test_deterministic_given_seed(self):
        a = AdaptiveRouting(random.Random(5))
        b = AdaptiveRouting(random.Random(5))
        seq_a = [a.choose(["x", "y", "z"], no_load) for _ in range(20)]
        seq_b = [b.choose(["x", "y", "z"], no_load) for _ in range(20)]
        assert seq_a == seq_b


class TestCongestionAware:
    def test_picks_least_loaded(self):
        policy = CongestionAwareRouting(random.Random(0))
        loads = {"a": 5, "b": 1, "c": 3}
        assert policy.choose(["a", "b", "c"], loads.__getitem__) == "b"

    def test_tie_break_random_but_among_best(self):
        policy = CongestionAwareRouting(random.Random(0))
        loads = {"a": 1, "b": 1, "c": 9}
        picks = {policy.choose(["a", "b", "c"], loads.__getitem__) for _ in range(50)}
        assert picks <= {"a", "b"}
        assert len(picks) == 2
