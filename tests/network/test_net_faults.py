"""Unit tests for fault injection."""

import random

import pytest

from repro.network.faults import FaultInjector, FaultKind, FaultPlan
from repro.network.packet import Packet, PacketType


def packet(src=0, dst=1):
    return Packet(src=src, dst=dst, ptype=PacketType.STREAM_DATA, payload=(1, 2))


class TestFaultPlan:
    def test_none_is_empty(self):
        assert FaultPlan.none().is_empty

    def test_corrupt_indices_builder(self):
        plan = FaultPlan.corrupt_indices(0, 1, [2, 5])
        assert plan.targeted[(0, 1, 2)] is FaultKind.CORRUPT
        assert plan.targeted[(0, 1, 5)] is FaultKind.CORRUPT

    def test_drop_indices_builder(self):
        plan = FaultPlan.drop_indices(0, 1, [0])
        assert plan.targeted[(0, 1, 0)] is FaultKind.DROP

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(corrupt_prob=1.5)


class TestFaultInjector:
    def test_no_plan_passes_everything(self):
        injector = FaultInjector()
        p = packet()
        assert injector.apply(p, 0) is p
        assert injector.total_faults == 0

    def test_targeted_corrupt(self):
        injector = FaultInjector(FaultPlan.corrupt_indices(0, 1, [1]))
        assert injector.apply(packet(), 0).checksum_ok()
        corrupted = injector.apply(packet(), 1)
        assert not corrupted.checksum_ok()
        assert injector.corrupted_count == 1

    def test_targeted_drop(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [0]))
        assert injector.apply(packet(), 0) is None
        assert injector.dropped_count == 1

    def test_once_semantics_retransmission_succeeds(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [3], once=True))
        assert injector.apply(packet(), 3) is None
        survivor = injector.apply(packet(), 3)  # the retransmission
        assert survivor is not None and survivor.checksum_ok()

    def test_persistent_fault_when_once_false(self):
        injector = FaultInjector(FaultPlan.drop_indices(0, 1, [3], once=False))
        assert injector.apply(packet(), 3) is None
        assert injector.apply(packet(), 3) is None

    def test_targeting_is_per_channel(self):
        injector = FaultInjector(FaultPlan.corrupt_indices(0, 1, [0]))
        other = packet(src=5, dst=6)
        assert injector.apply(other, 0) is other

    def test_probabilistic_rates(self):
        injector = FaultInjector(
            FaultPlan(corrupt_prob=0.3, drop_prob=0.2), rng=random.Random(1)
        )
        survived = corrupted = dropped = 0
        for i in range(5000):
            result = injector.apply(packet(), i)
            if result is None:
                dropped += 1
            elif not result.checksum_ok():
                corrupted += 1
            else:
                survived += 1
        assert dropped / 5000 == pytest.approx(0.2, abs=0.03)
        # corruption applies to the packets that were not dropped
        assert corrupted / 5000 == pytest.approx(0.8 * 0.3, abs=0.03)
        assert injector.total_faults == corrupted + dropped
