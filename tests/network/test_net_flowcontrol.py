"""Unit tests for finite buffers and credits."""

import pytest
from hypothesis import given, strategies as st

from repro.network.flowcontrol import BufferOverflowError, CreditCounter, FiniteBuffer


class TestFiniteBuffer:
    def test_fifo_order(self):
        buf = FiniteBuffer(4)
        for i in range(3):
            buf.push(i)
        assert [buf.pop() for _ in range(3)] == [0, 1, 2]

    def test_offer_rejects_when_full(self):
        buf = FiniteBuffer(2)
        assert buf.offer("a") and buf.offer("b")
        assert not buf.offer("c")
        assert buf.total_rejected == 1
        assert buf.occupancy == 2

    def test_push_raises_on_overflow(self):
        buf = FiniteBuffer(1)
        buf.push("a")
        with pytest.raises(BufferOverflowError):
            buf.push("b")

    def test_peak_occupancy(self):
        buf = FiniteBuffer(10)
        for i in range(7):
            buf.push(i)
        for _ in range(7):
            buf.pop()
        assert buf.peak_occupancy == 7
        assert buf.occupancy == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FiniteBuffer(1).pop()

    def test_peek(self):
        buf = FiniteBuffer(2)
        assert buf.peek() is None
        buf.push("x")
        assert buf.peek() == "x"
        assert buf.occupancy == 1  # peek does not consume

    def test_free(self):
        buf = FiniteBuffer(3)
        buf.push(1)
        assert buf.free == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FiniteBuffer(0)

    @given(ops=st.lists(st.sampled_from(["push", "pop"]), max_size=200))
    def test_occupancy_never_exceeds_capacity(self, ops):
        buf = FiniteBuffer(5)
        for op in ops:
            if op == "push":
                buf.offer(object())
            elif buf:
                buf.pop()
        assert 0 <= buf.occupancy <= 5
        assert buf.peak_occupancy <= 5


class TestCreditCounter:
    def test_consume_and_refund(self):
        credits = CreditCounter(3)
        assert credits.try_consume(2)
        assert credits.credits == 1
        assert not credits.try_consume(2)
        credits.refund(2)
        assert credits.try_consume(2)

    def test_totals(self):
        credits = CreditCounter(5)
        credits.try_consume(3)
        credits.refund(1)
        assert credits.total_consumed == 3
        assert credits.total_returned == 1

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            CreditCounter(-1)

    @given(
        initial=st.integers(0, 10),
        ops=st.lists(st.tuples(st.sampled_from(["take", "give"]), st.integers(1, 3)),
                     max_size=100),
    )
    def test_credits_never_negative(self, initial, ops):
        credits = CreditCounter(initial)
        for op, amount in ops:
            if op == "take":
                credits.try_consume(amount)
            else:
                credits.refund(amount)
            assert credits.credits >= 0
