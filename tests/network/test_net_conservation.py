"""Conservation and ordering properties of the detailed network
(hypothesis-driven)."""

import random

from hypothesis import given, settings, strategies as st

from repro.network.fattree import FatTree
from repro.network.mesh import Mesh2D
from repro.network.packet import Packet, PacketType
from repro.network.router import DetailedNetwork
from repro.network.routing import AdaptiveRouting, DeterministicRouting
from repro.sim.engine import Simulator


def run_traffic(topology, routing, pairs, virtual_channels=1, vc_seed=0,
                service_time=1.5):
    """Inject one packet per (src, dst) pair at t=0; return the network
    and delivered packets."""
    sim = Simulator()
    net = DetailedNetwork(
        sim, topology, routing=routing, service_time=service_time,
        virtual_channels=virtual_channels, vc_rng=random.Random(vc_seed),
    )
    delivered = []
    for node in topology.endpoints:
        net.attach(node, lambda p: delivered.append(p))
    seq_per_channel = {}
    for src, dst in pairs:
        seq = seq_per_channel.get((src, dst), 0)
        seq_per_channel[(src, dst)] = seq + 1
        net.inject(Packet(src=src, dst=dst, ptype=PacketType.STREAM_DATA, seq=seq))
    sim.run()
    return net, delivered


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    count=st.integers(1, 120),
    vcs=st.sampled_from([1, 2, 4]),
)
def test_every_injected_packet_is_delivered_exactly_once(seed, count, vcs):
    """Conservation: no loss, no duplication, for arbitrary traffic,
    arbitrary adaptivity, arbitrary virtual-channel counts."""
    rng = random.Random(seed)
    topology = FatTree(arity=4, height=2, parents=2)
    pairs = []
    for _ in range(count):
        src = rng.randrange(16)
        dst = rng.randrange(15)
        if dst >= src:
            dst += 1
        pairs.append((src, dst))
    net, delivered = run_traffic(
        topology, AdaptiveRouting(random.Random(seed + 1)), pairs,
        virtual_channels=vcs, vc_seed=seed + 2,
    )
    assert len(delivered) == count
    assert net.counters.get("delivered") == count
    # Per-channel multiset of sequence numbers is preserved.
    sent = {}
    for src, dst in pairs:
        sent[(src, dst)] = sent.get((src, dst), 0) + 1
    got = {}
    for p in delivered:
        got[(p.src, p.dst)] = got.get((p.src, p.dst), 0) + 1
    assert got == sent


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), count=st.integers(2, 100))
def test_deterministic_single_vc_is_fifo_per_channel(seed, count):
    """With one path and one lane, per-channel order survives arbitrary
    cross traffic and congestion."""
    rng = random.Random(seed)
    topology = Mesh2D(4, 4)
    pairs = [(0, 15)] * count  # the measured channel
    # Arbitrary cross traffic.
    for _ in range(count):
        src = rng.randrange(16)
        dst = rng.randrange(15)
        if dst >= src:
            dst += 1
        pairs.append((src, dst))
    rng.shuffle(pairs)
    # Re-derive the measured channel's injection order after the shuffle.
    net, delivered = run_traffic(
        topology, DeterministicRouting(), pairs, service_time=2.0
    )
    measured = [p.seq for p in delivered if (p.src, p.dst) == (0, 15)]
    assert measured == sorted(measured)
    assert net.ooo_fraction(0, 15) == 0.0
