"""Unit tests for the 2-D mesh topology."""

import random

import pytest

from repro.network.mesh import Mesh2D


class TestStructure:
    def test_coords(self):
        mesh = Mesh2D(4, 3)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(5) == (1, 1)
        assert mesh.coords(11) == (3, 2)

    def test_endpoint_count(self):
        assert len(list(Mesh2D(4, 3).endpoints)) == 12

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Mesh2D(0, 3)

    def test_manhattan(self):
        mesh = Mesh2D(4, 4)
        assert mesh.manhattan(0, 15) == 6
        assert mesh.manhattan(5, 5) == 0


class TestXYRouting:
    def test_single_path(self):
        mesh = Mesh2D(4, 4, adaptive=False)
        assert mesh.path_diversity(0, 15) == 1

    def test_x_before_y(self):
        mesh = Mesh2D(4, 4, adaptive=False)
        walk = mesh.path(0, 15)
        xs = [v[1] for v in walk if isinstance(v, tuple)]
        ys = [v[2] for v in walk if isinstance(v, tuple)]
        # All x movement happens before any y movement.
        first_y_move = next(i for i, y in enumerate(ys) if y != ys[0])
        assert xs[first_y_move - 1] == 3

    def test_path_length_is_minimal(self):
        mesh = Mesh2D(5, 5, adaptive=False)
        rng = random.Random(0)
        for _ in range(30):
            src, dst = rng.randrange(25), rng.randrange(25)
            if src == dst:
                continue
            walk = mesh.path(src, dst)
            # src + routers (manhattan + 1 for injection) + dst endpoint
            assert len(walk) == mesh.manhattan(src, dst) + 3


class TestAdaptiveRouting:
    def test_diagonal_offers_two_choices(self):
        mesh = Mesh2D(4, 4, adaptive=True)
        hops = mesh.next_hops(("m", 0, 0), dst=15)
        assert len(hops) == 2

    def test_adaptive_paths_still_minimal(self):
        mesh = Mesh2D(5, 5, adaptive=True)
        rng = random.Random(7)
        for _ in range(30):
            src, dst = rng.randrange(25), rng.randrange(25)
            if src == dst:
                continue
            walk = mesh.path(src, dst, chooser=rng.choice)
            assert walk[-1] == dst
            assert len(walk) == mesh.manhattan(src, dst) + 3

    def test_diversity_counts_choices(self):
        mesh = Mesh2D(4, 4, adaptive=True)
        assert mesh.path_diversity(0, 15) > 1
        assert mesh.path_diversity(0, 3) == 1  # straight line: no choice
