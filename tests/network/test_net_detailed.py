"""Tests for the hop-by-hop detailed network.

The headline behaviours: packets genuinely traverse the topology and
arrive; deterministic routing preserves per-channel order; adaptive
routing over a fat tree with congestion produces *emergent* out-of-order
delivery — the hardware phenomenon the paper's messaging layer pays to
mask; buffers never exceed capacity.
"""

import random

import pytest

from repro.network.fattree import FatTree
from repro.network.faults import FaultInjector, FaultPlan
from repro.network.mesh import Mesh2D
from repro.network.packet import Packet, PacketType
from repro.network.router import ChannelOrderTracker, DetailedNetwork
from repro.network.routing import AdaptiveRouting, DeterministicRouting
from repro.network.topology import StarTopology
from repro.sim.engine import Simulator


def make_net(topology, routing=None, **kwargs):
    sim = Simulator()
    net = DetailedNetwork(sim, topology, routing=routing, **kwargs)
    return sim, net


def burst(net, src, dst, count):
    """Inject a back-to-back burst on one channel; return delivered list."""
    delivered = []
    net.attach(dst, lambda pkt: delivered.append(pkt))
    for i in range(count):
        net.inject(Packet(src=src, dst=dst, ptype=PacketType.STREAM_DATA,
                          payload=(i,), seq=i))
    net.sim.run()
    return delivered


class TestChannelOrderTracker:
    def test_in_order(self):
        tracker = ChannelOrderTracker()
        assert not any(tracker.record(i) for i in range(5))
        assert tracker.ooo_fraction == 0.0

    def test_reordered(self):
        tracker = ChannelOrderTracker()
        flags = [tracker.record(i) for i in (1, 0, 2)]
        assert flags == [True, False, False]
        assert tracker.ooo_count == 1


class TestBasicTransport:
    def test_star_delivers(self):
        sim, net = make_net(StarTopology(4))
        delivered = burst(net, 0, 3, 5)
        assert [p.payload[0] for p in delivered] == [0, 1, 2, 3, 4]
        assert net.counters.get("delivered") == 5

    def test_fattree_delivers_across_tree(self):
        sim, net = make_net(FatTree(arity=4, height=2))
        delivered = burst(net, 0, 15, 10)
        assert len(delivered) == 10

    def test_mesh_delivers(self):
        sim, net = make_net(Mesh2D(4, 4))
        delivered = burst(net, 0, 15, 10)
        assert len(delivered) == 10

    def test_latency_positive_and_tracked(self):
        sim, net = make_net(FatTree(arity=4, height=2))
        burst(net, 0, 15, 4)
        assert net.latency_stats.n == 4
        assert net.latency_stats.min > 0

    def test_attach_validates_endpoint(self):
        sim, net = make_net(StarTopology(2))
        with pytest.raises(ValueError):
            net.attach(99, lambda p: None)

    def test_undeliverable_counted(self):
        sim, net = make_net(StarTopology(2))
        net.inject(Packet(src=0, dst=1, ptype=PacketType.STREAM_DATA))
        sim.run()
        assert net.counters.get("undeliverable") == 1


class TestOrdering:
    def test_deterministic_routing_preserves_order(self):
        sim, net = make_net(
            FatTree(arity=4, height=2, parents=2), routing=DeterministicRouting()
        )
        delivered = burst(net, 0, 15, 40)
        assert [p.seq for p in delivered] == list(range(40))
        assert net.ooo_fraction(0, 15) == 0.0

    def test_adaptive_routing_reorders_under_congestion(self):
        """The paper's Section 2.2 phenomenon, reproduced from first
        principles: multipath adaptivity + queueing => arbitrary order.
        Four flows from distinct sub-trees congest the upper tree; the
        measured channel sees heavy reordering."""
        sim = Simulator()
        net = DetailedNetwork(
            sim,
            FatTree(arity=4, height=3, parents=4),
            routing=AdaptiveRouting(random.Random(11)),
            service_time=2.0,
        )
        delivered = []
        net.attach(63, lambda pkt: delivered.append(pkt))
        for flow in (1, 2, 3):
            net.attach(63 - flow, lambda pkt: None)
        for i in range(60):
            for flow in range(4):
                net.inject(Packet(src=4 * flow, dst=63 - flow,
                                  ptype=PacketType.STREAM_DATA, seq=i))
        sim.run()
        assert len(delivered) == 60
        assert sorted(p.seq for p in delivered) == list(range(60))
        assert net.ooo_fraction(0, 63) > 0.3

    def test_ooo_fraction_zero_for_unknown_channel(self):
        sim, net = make_net(StarTopology(2))
        assert net.ooo_fraction(0, 1) == 0.0


class TestVirtualChannels:
    """Section 2.2's third reorder mechanism: virtual channels let packets
    overtake on a *single* physical path."""

    def _run_mesh(self, vcs, seed=5):
        sim = Simulator()
        net = DetailedNetwork(
            sim, Mesh2D(4, 4), virtual_channels=vcs,
            vc_rng=random.Random(seed), service_time=2.0,
        )
        delivered = []
        net.attach(15, lambda p: delivered.append(p))
        for i in range(100):
            net.inject(Packet(src=0, dst=15, ptype=PacketType.STREAM_DATA, seq=i))
        sim.run()
        return net, delivered

    def test_single_vc_preserves_order_on_xy_mesh(self):
        net, delivered = self._run_mesh(vcs=1)
        assert [p.seq for p in delivered] == list(range(100))
        assert net.ooo_fraction(0, 15) == 0.0

    def test_multiple_vcs_reorder_on_single_path(self):
        net, delivered = self._run_mesh(vcs=2)
        assert sorted(p.seq for p in delivered) == list(range(100))
        assert net.ooo_fraction(0, 15) > 0.3

    def test_more_vcs_more_reordering(self):
        net2, _d = self._run_mesh(vcs=2)
        net4, _d = self._run_mesh(vcs=4)
        assert net4.ooo_fraction(0, 15) > net2.ooo_fraction(0, 15)

    def test_no_packets_lost_with_vcs(self):
        net, delivered = self._run_mesh(vcs=4)
        assert len(delivered) == 100

    def test_invalid_vc_count(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DetailedNetwork(sim, Mesh2D(2, 2), virtual_channels=0)


class TestFiniteBuffers:
    def test_peak_occupancy_bounded(self):
        sim = Simulator()
        net = DetailedNetwork(
            sim, FatTree(arity=4, height=2), buffer_capacity=3, service_time=5.0
        )
        burst(net, 0, 15, 50)
        assert net.peak_buffer_occupancy() <= 3

    def test_stalls_counted_under_pressure(self):
        sim = Simulator()
        net = DetailedNetwork(
            sim, StarTopology(3), buffer_capacity=2, service_time=10.0
        )
        burst(net, 0, 2, 30)
        assert net.counters.get("stalls") > 0
        assert net.counters.get("delivered") == 30


class TestFaults:
    def test_dropped_packets_never_arrive(self):
        sim = Simulator()
        net = DetailedNetwork(
            sim, StarTopology(2),
            injector=FaultInjector(FaultPlan.drop_indices(0, 1, [2, 4])),
        )
        delivered = burst(net, 0, 1, 6)
        assert len(delivered) == 4
        assert net.counters.get("dropped_in_flight") == 2
