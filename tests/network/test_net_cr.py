"""Unit tests for the Compressionless Routing network model.

The three Section 4 hardware services, each verified directly:
order-preserving transmission, packet-level fault tolerance (transparent
hardware retries), and deadlock freedom independent of acceptance
(header rejection with other traffic unaffected).
"""

import pytest

from repro.network.cr import CRNetwork, CRNetworkConfig
from repro.network.faults import FaultInjector, FaultPlan
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Simulator


def data_packet(seq, src=0, dst=1, words=(1, 2)):
    return Packet(src=src, dst=dst, ptype=PacketType.STREAM_DATA,
                  payload=words, seq=seq)


@pytest.fixture
def sim():
    return Simulator()


class TestServiceFlags:
    def test_cr_provides_everything(self, sim):
        net = CRNetwork(sim)
        assert net.provides_in_order
        assert net.provides_flow_control
        assert net.provides_reliability


class TestInOrderDelivery:
    def test_order_preserved(self, sim):
        net = CRNetwork(sim)
        seqs = []
        net.attach(1, lambda p: seqs.append(p.seq))
        for i in range(20):
            net.inject(data_packet(i))
        sim.run()
        assert seqs == list(range(20))

    def test_order_preserved_even_with_faults(self, sim):
        net = CRNetwork(
            sim, injector=FaultInjector(FaultPlan.corrupt_indices(0, 1, [3, 7]))
        )
        seqs = []
        net.attach(1, lambda p: seqs.append(p.seq))
        for i in range(10):
            net.inject(data_packet(i))
        sim.run()
        assert seqs == list(range(10))
        assert net.counters.get("hardware_retries") == 2

    def test_oversized_packet_rejected(self, sim):
        net = CRNetwork(sim, CRNetworkConfig(packet_size=4))
        with pytest.raises(ValueError):
            net.inject(data_packet(0, words=(1, 2, 3, 4, 5)))


class TestHardwareFaultTolerance:
    def test_every_packet_ultimately_delivered_intact(self, sim):
        net = CRNetwork(
            sim,
            injector=FaultInjector(
                FaultPlan.drop_indices(0, 1, [0, 1, 2], once=True)
            ),
        )
        got = []
        net.attach(1, lambda p: got.append(p))
        for i in range(5):
            net.inject(data_packet(i))
        sim.run()
        assert [p.seq for p in got] == list(range(5))
        assert all(p.checksum_ok() for p in got)
        assert net.counters.get("hardware_retries") == 3

    def test_retries_are_software_free(self, sim):
        """No processor is attached at all — retries happen in 'hardware'."""
        net = CRNetwork(
            sim, injector=FaultInjector(FaultPlan.corrupt_indices(0, 1, [0]))
        )
        got = []
        net.attach(1, lambda p: got.append(p))
        net.inject(data_packet(0))
        sim.run()
        assert len(got) == 1 and got[0].checksum_ok()

    def test_retry_adds_latency(self, sim):
        config = CRNetworkConfig(latency=10.0, retry_latency=25.0)
        net = CRNetwork(
            sim, config,
            injector=FaultInjector(FaultPlan.corrupt_indices(0, 1, [0])),
        )
        times = []
        net.attach(1, lambda p: times.append(sim.now))
        net.inject(data_packet(0))
        sim.run()
        assert times == [35.0]


class TestHeaderRejection:
    def test_rejected_packet_retries_until_accepted(self, sim):
        net = CRNetwork(sim, CRNetworkConfig(latency=1.0, reject_backoff=10.0))
        accept_after = {"count": 3}

        def acceptor(_packet):
            accept_after["count"] -= 1
            return accept_after["count"] < 0

        net.set_acceptor(1, acceptor)
        got = []
        net.attach(1, lambda p: got.append(sim.now))
        net.inject(data_packet(0))
        sim.run()
        assert len(got) == 1
        assert got[0] == pytest.approx(1.0 + 3 * 10.0)
        assert net.counters.get("rejections") == 3

    def test_rejection_does_not_block_other_channels(self, sim):
        """Deadlock freedom independent of acceptance: node 1 never accepts,
        node 2's traffic flows anyway."""
        net = CRNetwork(sim, CRNetworkConfig(max_rejects=5))
        net.set_acceptor(1, lambda p: False)
        got_2 = []
        net.attach(1, lambda p: pytest.fail("must never deliver to 1"))
        net.attach(2, lambda p: got_2.append(p.seq))
        net.inject(data_packet(0, dst=1))
        for i in range(5):
            net.inject(data_packet(i, dst=2))
        with pytest.raises(RuntimeError):
            sim.run()  # node 1 eventually exhausts max_rejects (livelock guard)
        assert got_2 == list(range(5))

    def test_acceptor_removal(self, sim):
        net = CRNetwork(sim)
        net.set_acceptor(1, lambda p: False)
        net.set_acceptor(1, None)
        got = []
        net.attach(1, lambda p: got.append(p))
        net.inject(data_packet(0))
        sim.run()
        assert len(got) == 1

    def test_in_flight_query(self, sim):
        net = CRNetwork(sim)
        net.attach(1, lambda p: None)
        net.inject(data_packet(0))
        assert net.in_flight() == 1
        sim.run()
        assert net.in_flight() == 0
