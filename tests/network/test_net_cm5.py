"""Unit tests for the service-level CM-5 network model."""

import pytest

from repro.network.cm5 import CM5Network, CM5NetworkConfig
from repro.network.delivery import InOrderDelivery, PairSwapReorder
from repro.network.faults import FaultInjector, FaultPlan
from repro.network.packet import Packet, PacketType
from repro.sim.engine import Simulator


def data_packet(seq, src=0, dst=1, words=(1, 2)):
    return Packet(src=src, dst=dst, ptype=PacketType.STREAM_DATA,
                  payload=words, seq=seq)


def ctrl_packet(src=0, dst=1):
    return Packet(src=src, dst=dst, ptype=PacketType.STREAM_ACK, payload=(0,))


@pytest.fixture
def sim():
    return Simulator()


class TestServiceFlags:
    def test_cm5_provides_nothing(self, sim):
        net = CM5Network(sim)
        assert not net.provides_in_order
        assert not net.provides_flow_control
        assert not net.provides_reliability


class TestDelivery:
    def test_packets_arrive_after_latency(self, sim):
        net = CM5Network(sim, CM5NetworkConfig(latency=7.0),
                         delivery_factory=InOrderDelivery)
        arrivals = []
        net.attach(1, lambda p: arrivals.append((sim.now, p)))
        net.inject(data_packet(0))
        sim.run()
        assert len(arrivals) == 1
        assert arrivals[0][0] == 7.0

    def test_pairswap_reorders_data_stream(self, sim):
        net = CM5Network(sim)  # default PairSwapReorder
        seqs = []
        net.attach(1, lambda p: seqs.append(p.seq))
        for i in range(6):
            net.inject(data_packet(i))
        sim.run()
        assert seqs == [1, 0, 3, 2, 5, 4]

    def test_control_packets_never_reordered(self, sim):
        net = CM5Network(sim)
        order = []
        net.attach(1, lambda p: order.append(p.ptype))
        net.inject(ctrl_packet())
        net.inject(ctrl_packet())
        sim.run()
        assert len(order) == 2  # neither held by the reorder stage

    def test_held_packet_flushes_after_timeout(self, sim):
        net = CM5Network(sim, CM5NetworkConfig(latency=1.0, hold_timeout=50.0))
        arrivals = []
        net.attach(1, lambda p: arrivals.append((sim.now, p.seq)))
        net.inject(data_packet(0))  # held by pair-swap, no partner coming
        sim.run()
        assert arrivals == [(51.0, 0)]
        assert net.counters.get("flushed") == 1

    def test_oversized_packet_rejected(self, sim):
        net = CM5Network(sim, CM5NetworkConfig(packet_size=4))
        net.attach(1, lambda p: None)
        with pytest.raises(ValueError):
            net.inject(data_packet(0, words=(1, 2, 3, 4, 5)))

    def test_channels_are_independent(self, sim):
        net = CM5Network(sim)
        seqs_b, seqs_c = [], []
        net.attach(1, lambda p: seqs_b.append(p.seq))
        net.attach(2, lambda p: seqs_c.append(p.seq))
        for i in range(4):
            net.inject(data_packet(i, dst=1))
            net.inject(data_packet(i, dst=2))
        sim.run()
        assert seqs_b == [1, 0, 3, 2]
        assert seqs_c == [1, 0, 3, 2]

    def test_undeliverable_counted(self, sim):
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        net.inject(data_packet(0, dst=9))
        sim.run()
        assert net.counters.get("undeliverable") == 1

    def test_expected_ooo_exposed(self, sim):
        net = CM5Network(sim)
        assert net.expected_ooo(0, 1, 10) == 5
        inorder = CM5Network(Simulator(), delivery_factory=InOrderDelivery)
        assert inorder.expected_ooo(0, 1, 10) == 0


class TestFaults:
    def test_dropped_in_flight(self, sim):
        net = CM5Network(
            sim,
            delivery_factory=InOrderDelivery,
            injector=FaultInjector(FaultPlan.drop_indices(0, 1, [1])),
        )
        seqs = []
        net.attach(1, lambda p: seqs.append(p.seq))
        for i in range(3):
            net.inject(data_packet(i))
        sim.run()
        assert seqs == [0, 2]
        assert net.counters.get("dropped_in_flight") == 1

    def test_corrupted_packet_delivered_but_fails_checksum(self, sim):
        net = CM5Network(
            sim,
            delivery_factory=InOrderDelivery,
            injector=FaultInjector(FaultPlan.corrupt_indices(0, 1, [0])),
        )
        got = []
        net.attach(1, lambda p: got.append(p))
        net.inject(data_packet(0))
        sim.run()
        assert len(got) == 1
        assert not got[0].checksum_ok()  # detection, not correction

    def test_word_accounting(self, sim):
        net = CM5Network(sim, delivery_factory=InOrderDelivery)
        net.attach(1, lambda p: None)
        net.inject(data_packet(0, words=(1, 2, 3)))
        net.inject(data_packet(1, words=(4,)))
        sim.run()
        assert net.counters.get("injected_words") == 4
