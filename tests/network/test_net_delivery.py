"""Unit tests for delivery-order models.

The central contract: replaying a model's release order through a
reorder-buffer classifier yields exactly ``expected_ooo(p)`` out-of-order
packets, for any p — this is what lets the closed-form cost model agree
with simulation.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.network.delivery import (
    FractionReorder,
    HeadDelayReorder,
    InOrderDelivery,
    PairSwapReorder,
    RandomReorder,
    TimesharingReorder,
)


def play(model, p):
    """Feed p arrivals through a model (plus flush); return release order."""
    order = []
    for i in range(p):
        order.extend(idx for idx, _pkt in model.on_arrival(i, f"pkt{i}"))
    order.extend(idx for idx, _pkt in model.flush())
    return order


def count_ooo(release_order):
    """Reorder-buffer classification: arrivals not immediately consumable."""
    expected = 0
    early = set()
    ooo = 0
    for index in release_order:
        if index == expected:
            expected += 1
            while expected in early:
                early.remove(expected)
                expected += 1
        else:
            early.add(index)
            ooo += 1
    return ooo


class TestInOrder:
    @pytest.mark.parametrize("p", [0, 1, 2, 7, 100])
    def test_identity_release(self, p):
        model = InOrderDelivery()
        assert play(model, p) == list(range(p))
        assert model.expected_ooo(p) == 0


class TestPairSwap:
    def test_release_order(self):
        assert play(PairSwapReorder(), 4) == [1, 0, 3, 2]

    def test_odd_count_flushes_leftover(self):
        assert play(PairSwapReorder(), 5) == [1, 0, 3, 2, 4]

    @pytest.mark.parametrize("p", [0, 1, 2, 3, 4, 16, 17, 256])
    def test_half_out_of_order(self, p):
        model = PairSwapReorder()
        assert count_ooo(play(model, p)) == p // 2 == model.expected_ooo(p)

    def test_pending_while_holding(self):
        model = PairSwapReorder()
        model.on_arrival(0, "a")
        assert model.pending() == 1
        model.on_arrival(1, "b")
        assert model.pending() == 0


class TestHeadDelay:
    def test_release_order(self):
        assert play(HeadDelayReorder(3), 6) == [1, 2, 3, 0, 4, 5]

    @pytest.mark.parametrize("k,p", [(0, 5), (1, 5), (3, 8), (7, 8), (10, 4)])
    def test_expected_ooo_matches(self, k, p):
        model = HeadDelayReorder(k)
        assert count_ooo(play(model, p)) == model.expected_ooo(p)

    def test_short_stream_flush(self):
        # Stream ends before index k arrives: flush releases the head last.
        model = HeadDelayReorder(10)
        assert play(model, 3) == [1, 2, 0]
        assert model.expected_ooo(3) == 2

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            HeadDelayReorder(-1)


class TestFractionReorder:
    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.75])
    @pytest.mark.parametrize("p", [0, 1, 4, 13, 64, 256])
    def test_expected_matches_observed(self, fraction, p):
        model = FractionReorder(fraction)
        observed = count_ooo(play(model, p))
        assert observed == model.expected_ooo(p)

    def test_half_equals_pairswap_count(self):
        model = FractionReorder(0.5)
        for p in (2, 10, 100):
            assert model.clone().expected_ooo(p) == p // 2

    def test_fraction_achieved_asymptotically(self):
        for fraction in (0.25, 0.5, 0.75):
            model = FractionReorder(fraction)
            p = 4000
            assert count_ooo(play(model, p)) / p == pytest.approx(fraction, abs=0.01)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FractionReorder(1.0)
        with pytest.raises(ValueError):
            FractionReorder(-0.1)

    def test_clone_fresh_state(self):
        model = FractionReorder(0.5)
        model.on_arrival(0, "x")
        clone = model.clone()
        assert clone.pending() == 0
        assert model.pending() == 1


class TestTimesharingReorder:
    def test_release_order_one_epoch_boundary(self):
        # epoch=4: packet 3 swapped out, re-emerges behind packet 4.
        assert play(TimesharingReorder(4), 8) == [0, 1, 2, 4, 3, 5, 6, 7]

    @pytest.mark.parametrize("epoch,p", [(2, 9), (4, 16), (8, 7), (8, 65)])
    def test_expected_ooo_matches(self, epoch, p):
        model = TimesharingReorder(epoch)
        assert count_ooo(play(model, p)) == model.expected_ooo(p)

    def test_short_stream_flushes(self):
        model = TimesharingReorder(4)
        assert play(model, 4) == [0, 1, 2, 3]
        assert model.expected_ooo(4) == 0

    def test_one_ooo_per_quantum(self):
        model = TimesharingReorder(8)
        assert model.expected_ooo(64) == 7
        assert model.expected_ooo(65) == 8

    def test_invalid_epoch(self):
        with pytest.raises(ValueError):
            TimesharingReorder(1)

    def test_clone(self):
        model = TimesharingReorder(4)
        model.on_arrival(3, "x")
        clone = model.clone()
        assert clone.pending() == 0 and clone.epoch == 4


class TestRandomReorder:
    def test_all_packets_eventually_released(self):
        model = RandomReorder(random.Random(42), hold_prob=0.5)
        released = play(model, 200)
        assert sorted(released) == list(range(200))

    def test_not_deterministic_flag(self):
        assert RandomReorder(random.Random(0)).deterministic is False

    def test_no_expected_formula(self):
        with pytest.raises(NotImplementedError):
            RandomReorder(random.Random(0)).expected_ooo(10)

    def test_zero_hold_prob_is_in_order(self):
        model = RandomReorder(random.Random(0), hold_prob=0.0)
        assert play(model, 50) == list(range(50))


@given(
    fraction=st.sampled_from([0.0, 0.125, 0.25, 0.5, 0.75]),
    p=st.integers(0, 300),
)
def test_fraction_model_formula_property(fraction, p):
    """expected_ooo is exact for every (fraction, p)."""
    model = FractionReorder(fraction)
    assert count_ooo(play(model, p)) == model.expected_ooo(p)


@given(p=st.integers(0, 500))
def test_models_release_every_packet_exactly_once(p):
    for model in (InOrderDelivery(), PairSwapReorder(), HeadDelayReorder(5),
                  FractionReorder(0.25)):
        assert sorted(play(model, p)) == list(range(p))
