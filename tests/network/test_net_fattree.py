"""Unit tests for the CM-5-style fat tree."""

import random

import pytest

from repro.network.fattree import FatTree


class TestStructure:
    def test_leaf_count(self):
        assert FatTree(arity=4, height=2).n_leaves == 16
        assert FatTree(arity=4, height=3).n_leaves == 64
        assert FatTree(arity=2, height=3).n_leaves == 8

    def test_router_counts(self):
        tree = FatTree(arity=4, height=2, parents=2)
        assert tree.routers_at_level(1) == 4      # 4 groups x 1 duplicate
        assert tree.routers_at_level(2) == 2      # 1 group x 2 duplicates

    def test_vertices_enumeration(self):
        tree = FatTree(arity=2, height=2, parents=2)
        vertices = list(tree.vertices())
        assert set(range(4)).issubset(vertices)
        routers = [v for v in vertices if isinstance(v, tuple)]
        assert len(routers) == tree.routers_at_level(1) + tree.routers_at_level(2)

    def test_lca_level(self):
        tree = FatTree(arity=4, height=2)
        assert tree.lca_level(0, 0) == 0
        assert tree.lca_level(0, 3) == 1    # same level-1 group
        assert tree.lca_level(0, 15) == 2   # opposite sides

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            FatTree(arity=1)
        with pytest.raises(ValueError):
            FatTree(height=0)
        with pytest.raises(ValueError):
            FatTree(parents=0)


class TestRouting:
    @pytest.mark.parametrize("parents", [1, 2, 4])
    def test_every_pair_routes(self, parents):
        tree = FatTree(arity=4, height=2, parents=parents)
        for src in range(tree.n_leaves):
            for dst in range(tree.n_leaves):
                if src == dst:
                    continue
                walk = tree.path(src, dst)
                assert walk[0] == src and walk[-1] == dst

    def test_path_alternates_up_then_down(self):
        tree = FatTree(arity=4, height=2, parents=2)
        walk = tree.path(0, 15)
        levels = [v[1] if isinstance(v, tuple) else 0 for v in walk]
        peak = max(levels)
        rising = levels[: levels.index(peak) + 1]
        falling = levels[levels.index(peak):]
        assert rising == sorted(rising)
        assert falling == sorted(falling, reverse=True)

    def test_random_choices_still_reach(self):
        tree = FatTree(arity=4, height=3, parents=2)
        rng = random.Random(3)
        for _ in range(50):
            src = rng.randrange(tree.n_leaves)
            dst = rng.randrange(tree.n_leaves)
            if src == dst:
                continue
            walk = tree.path(src, dst, chooser=rng.choice)
            assert walk[-1] == dst
            assert len(walk) <= 2 * tree.height + 2

    def test_up_path_diversity(self):
        tree = FatTree(arity=4, height=2, parents=2)
        assert tree.up_path_diversity(0, 1) == 1    # LCA at level 1
        assert tree.up_path_diversity(0, 15) == 2   # LCA at level 2
        deep = FatTree(arity=4, height=3, parents=2)
        assert deep.up_path_diversity(0, 63) == 4   # parents^(3-1)

    def test_diversity_matches_topology_walk(self):
        tree = FatTree(arity=4, height=2, parents=2)
        assert tree.path_diversity(0, 15) == tree.up_path_diversity(0, 15)

    def test_multiple_up_choices_distinct(self):
        tree = FatTree(arity=4, height=2, parents=2)
        hops = tree.next_hops(("r", 1, 0, 0), dst=15)
        assert len(hops) == 2
        assert len(set(hops)) == 2

    def test_no_up_from_root(self):
        tree = FatTree(arity=4, height=2, parents=2)
        with pytest.raises(ValueError):
            # Root asked to route to a leaf outside its (universal) group
            # cannot happen; force it by lying about the level.
            tree._up_hops(2, 0, 0)

    def test_endpoint_range_checked(self):
        tree = FatTree(arity=4, height=2)
        with pytest.raises(ValueError):
            tree.next_hops(0, dst=99)

    def test_down_route_unique(self):
        """Down-routing has exactly one choice at every hop."""
        tree = FatTree(arity=4, height=2, parents=2)
        at = ("r", 2, 0, 1)
        hops = tree.next_hops(at, dst=5)
        assert len(hops) == 1
