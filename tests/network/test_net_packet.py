"""Unit tests for packets and checksums."""

import pytest
from hypothesis import given, strategies as st

from repro.network.packet import Packet, PacketType, compute_checksum


class TestPacket:
    def test_wire_words_includes_header(self):
        packet = Packet(src=0, dst=1, ptype=PacketType.ACTIVE_MESSAGE,
                        payload=(1, 2, 3, 4))
        assert packet.data_words == 4
        assert packet.wire_words == 5  # the CM-5's five-word packet

    def test_checksum_auto_computed_and_valid(self):
        packet = Packet(src=0, dst=1, ptype=PacketType.STREAM_DATA, payload=(7, 8))
        assert packet.checksum == compute_checksum((7, 8))
        assert packet.checksum_ok()

    def test_corrupt_fails_checksum(self):
        packet = Packet(src=0, dst=1, ptype=PacketType.STREAM_DATA, payload=(7,))
        bad = packet.corrupt()
        assert not bad.checksum_ok()
        assert packet.checksum_ok()  # original untouched

    def test_retransmission_is_clean_with_new_identity(self):
        packet = Packet(src=0, dst=1, ptype=PacketType.STREAM_DATA, payload=(7,), seq=3)
        again = packet.corrupt().retransmission()
        assert again.checksum_ok()
        assert again.seq == 3
        assert again.packet_id != packet.packet_id

    def test_packet_ids_unique(self):
        a = Packet(src=0, dst=1, ptype=PacketType.ACTIVE_MESSAGE)
        b = Packet(src=0, dst=1, ptype=PacketType.ACTIVE_MESSAGE)
        assert a.packet_id != b.packet_id

    def test_metadata_fields(self):
        packet = Packet(
            src=2, dst=3, ptype=PacketType.XFER_DATA,
            payload=(1,), seq=5, offset=12, segment=2, size_hint=100,
        )
        assert (packet.seq, packet.offset, packet.segment, packet.size_hint) == (
            5, 12, 2, 100
        )

    def test_str_mentions_route(self):
        packet = Packet(src=2, dst=3, ptype=PacketType.XFER_ACK)
        assert "2->3" in str(packet)


class TestChecksum:
    def test_deterministic(self):
        assert compute_checksum((1, 2, 3)) == compute_checksum((1, 2, 3))

    def test_order_sensitive(self):
        assert compute_checksum((1, 2)) != compute_checksum((2, 1))

    def test_empty(self):
        assert compute_checksum(()) == 0

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=16))
    def test_detects_single_word_flips(self, words):
        base = compute_checksum(tuple(words))
        for i in range(len(words)):
            mutated = list(words)
            mutated[i] ^= 0x1
            assert compute_checksum(tuple(mutated)) != base
